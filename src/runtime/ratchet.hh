/**
 * @file
 * Ratchet-style policy [54]: compiler-enforced idempotency without
 * hardware support. Ratchet decomposes the program into idempotent
 * sections at compile time by breaking every potential WAR dependence
 * with a checkpoint. Lacking runtime address knowledge, the compiler
 * must be conservative; we model that conservatism as "any nonvolatile
 * store after any nonvolatile load since the last checkpoint forces a
 * checkpoint" (real Ratchet sharpens this with alias analysis, so this
 * is a lower bound on its section lengths — see the
 * abl_compiler_vs_hw_idempotency bench for the comparison against
 * Clank's runtime tracking).
 */

#ifndef EH_RUNTIME_RATCHET_HH
#define EH_RUNTIME_RATCHET_HH

#include "runtime/policy.hh"

namespace eh::runtime {

/** Configuration of the Ratchet policy. */
struct RatchetConfig
{
    /** Force a checkpoint after this many cycles without a WAR break
     * (Ratchet's timer fallback for store-free stretches). */
    std::uint64_t maxSectionCycles = 8000;
    /** Architectural bytes charged per checkpoint. */
    std::uint64_t archBytes = 80;
};

/** Conservative compiler-enforced idempotent sections. */
class Ratchet : public BackupPolicy
{
  public:
    explicit Ratchet(const RatchetConfig &config);

    std::string name() const override { return "ratchet"; }
    PolicyDecision beforeStep(const arch::Cpu &cpu,
                              const arch::MemPeek &peek,
                              const SupplyView &supply) override;
    void afterStep(const arch::Cpu &cpu,
                   const arch::StepResult &result) override;
    PolicyDecision onCheckpointOp(const SupplyView &supply) override;
    std::uint64_t chargedAppBackupBytes() const override { return 0; }
    std::uint64_t chargedArchBytes() const override
    {
        return cfg.archBytes;
    }
    bool savesVolatilePayload() const override { return false; }
    void onBackupCommitted(const SupplyView &supply) override;
    void onPowerFail() override;
    void onRestore() override;

    // Block-engine contract: the WAR rule consumes MemPeek data
    // (needsPeek), so every load/store runs under the exact
    // per-instruction protocol; between memory accesses only the
    // section timer can fire.
    PolicyCaps blockCaps() const override { return {true, false}; }
    DecisionHorizon decisionHorizon() const override
    {
        DecisionHorizon h;
        h.cycles = sectionCycles >= cfg.maxSectionCycles
                       ? 0
                       : cfg.maxSectionCycles - sectionCycles;
        return h;
    }
    void onBlockAdvance(std::uint64_t cycles,
                        std::uint64_t instructions) override
    {
        (void)instructions;
        sectionCycles += cycles;
    }

    /** WAR-break checkpoints taken so far. */
    std::uint64_t warBreaks() const { return breaks; }

  private:
    RatchetConfig cfg;
    bool loadSeen = false;
    std::uint64_t sectionCycles = 0;
    std::uint64_t breaks = 0;
};

} // namespace eh::runtime

#endif // EH_RUNTIME_RATCHET_HH
