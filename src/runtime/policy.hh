/**
 * @file
 * Backup-policy interface. A policy decides *when* the simulator must
 * perform a backup and *how many bytes* of application state that backup
 * is charged for; the simulator owns the mechanics (copying state into
 * the double-buffered checkpoint region, charging energy, handling power
 * failures mid-backup).
 *
 * The six implementations cover the paper's taxonomy (Section II):
 * Hibernus (single-backup, voltage threshold), Mementos (compiler
 * checkpoints + voltage test), DINO/Chain (task-boundary commits), Clank
 * (idempotency violations + watchdog), NVP (backup every cycle) and a
 * plain watchdog timer (the hypothetical mixed-volatility processor of
 * Section V-B).
 */

#ifndef EH_RUNTIME_POLICY_HH
#define EH_RUNTIME_POLICY_HH

#include <algorithm>
#include <cstdint>
#include <string>

#include "arch/cpu.hh"
#include "arch/tracker.hh"

namespace eh::runtime {

/** Snapshot of the energy supply a policy may consult (its "ADC"). */
struct SupplyView
{
    double stored = 0.0; ///< energy currently stored
    double budget = 0.0; ///< usable energy per period (E)

    /** Stored energy as a fraction of the period budget, in [0, 1]. */
    double
    fraction() const
    {
        if (budget <= 0.0)
            return 0.0;
        return std::clamp(stored / budget, 0.0, 1.0);
    }
};

/** What the policy wants the simulator to do before the next step. */
enum class PolicyAction
{
    Continue,       ///< execute the next instruction
    Backup,         ///< back up, then continue executing
    BackupAndSleep  ///< back up, then hibernate until the next period
};

/** Decision plus any monitoring overhead incurred while deciding. */
struct PolicyDecision
{
    PolicyAction action = PolicyAction::Continue;
    arch::BackupTrigger reason = arch::BackupTrigger::None;
    std::uint64_t monitorCycles = 0; ///< ADC/supervision cycles to charge
    double monitorEnergy = 0.0;      ///< ADC/supervision energy to charge
};

/**
 * What the block execution engine may batch around a policy
 * (docs/PERFORMANCE.md). The defaults are maximally conservative: a
 * policy that declares nothing runs under the exact per-instruction
 * protocol even on the block engine.
 */
struct PolicyCaps
{
    /**
     * beforeStep() inspects (and possibly updates state from) the
     * MemPeek of upcoming memory instructions — Clank's tracking
     * buffers, Ratchet's WAR rule. The engine then runs every
     * load/store through the full per-instruction protocol.
     */
    bool needsPeek = true;

    /**
     * beforeStep()/afterStep() may act or accumulate state on *any*
     * instruction, so nothing may be batched. Policies that clear this
     * flag promise that, between the decision points the engine is
     * obliged to visit (see DecisionHorizon), every beforeStep() would
     * return Continue with no monitor overhead, and that replacing the
     * skipped afterStep() calls for non-memory instructions with one
     * onBlockAdvance(total cycles, count) reproduces their state
     * exactly. Memory instructions always get a real afterStep().
     */
    bool needsPerInstructionHook = true;
};

/**
 * How far the policy allows execution to run before it must be
 * consulted again — its decision granularity. The engine stops at the
 * first instruction boundary where either bound is reached, counted
 * from the consultation that returned this horizon; unbounded
 * dimensions use the `unbounded` sentinel. A zero bound degrades that
 * quantum to a single exactly-emulated instruction, so a conservative
 * horizon is always safe.
 */
struct DecisionHorizon
{
    static constexpr std::uint64_t unbounded = UINT64_MAX;

    std::uint64_t cycles = unbounded;
    std::uint64_t instructions = unbounded;
};

/**
 * Policy interface. Contract with the simulator, per instruction:
 *
 *  1. The simulator calls beforeStep() with the CPU, a peek at the next
 *     instruction's memory behaviour, and the supply view. If the
 *     decision is a backup, the simulator performs it (calling
 *     onBackupCommitted() on success) and calls beforeStep() again,
 *     repeating until the decision is Continue.
 *  2. The instruction executes; afterStep() sees the result.
 *  3. If the instruction was a CHECKPOINT op, onCheckpointOp() is
 *     consulted the same way as beforeStep().
 *
 * On a power failure the simulator calls onPowerFail(); at the start of
 * each active period, after state is reloaded, onRestore().
 */
class BackupPolicy
{
  public:
    virtual ~BackupPolicy() = default;

    /** Policy name for reports ("clank", "hibernus", ...). */
    virtual std::string name() const = 0;

    /** Consulted before each instruction (see class contract). */
    virtual PolicyDecision beforeStep(const arch::Cpu &cpu,
                                      const arch::MemPeek &peek,
                                      const SupplyView &supply) = 0;

    /** Observes each executed instruction. */
    virtual void afterStep(const arch::Cpu &cpu,
                           const arch::StepResult &result) = 0;

    /** Consulted when a CHECKPOINT instruction executes. */
    virtual PolicyDecision onCheckpointOp(const SupplyView &supply) = 0;

    /**
     * Application-state bytes this backup is *charged* for (the model's
     * alpha_B * tau_B contribution). The physical payload copied for
     * correctness can differ (see savesVolatilePayload()).
     */
    virtual std::uint64_t chargedAppBackupBytes() const = 0;

    /**
     * Architectural-state bytes charged per backup (the model's A_B).
     * Defaults to the full register file + PC.
     */
    virtual std::uint64_t
    chargedArchBytes() const
    {
        return arch::Cpu::archStateBytes;
    }

    /**
     * True when the policy keeps application data in volatile memory, so
     * the simulator must physically copy the used SRAM region into the
     * checkpoint (and back on restore).
     */
    virtual bool savesVolatilePayload() const = 0;

    /**
     * A backup has committed (buffers clear, counters restart).
     * @param supply Post-backup supply view — adaptive policies use it
     *               to measure what the backup actually cost.
     */
    virtual void onBackupCommitted(const SupplyView &supply) = 0;

    /** Power failed; volatile tracking state is lost. */
    virtual void onPowerFail() = 0;

    /** A restore completed; execution resumes at the checkpoint. */
    virtual void onRestore() = 0;

    /**
     * A restore attempt could not use the expected checkpoint — the
     * slot failed its integrity check (corruption), the read faulted
     * transiently, or recovery fell through to a restart from program
     * start. Called before the recovery action resolves; onRestore()
     * still follows once execution has a consistent state to resume
     * from. The default keeps policies oblivious: volatile tracking was
     * already cleared by onPowerFail(), so most have nothing to do.
     */
    virtual void onRestoreFailed() {}

    // --- Block-engine capability contract (docs/PERFORMANCE.md) -----

    /** What the block engine may batch; conservative by default. */
    virtual PolicyCaps blockCaps() const { return {}; }

    /**
     * Bound, from the policy's current state, on how long beforeStep()
     * is guaranteed to keep returning a no-overhead Continue. Consulted
     * only when blockCaps() clears needsPerInstructionHook.
     */
    virtual DecisionHorizon decisionHorizon() const { return {}; }

    /**
     * Batched substitute for the afterStep() calls of @p instructions
     * non-memory instructions totalling @p cycles cycles, delivered in
     * execution order relative to the afterStep() of any interleaved
     * memory instruction. Consulted only when blockCaps() clears
     * needsPerInstructionHook.
     */
    virtual void onBlockAdvance(std::uint64_t cycles,
                                std::uint64_t instructions)
    {
        (void)cycles;
        (void)instructions;
    }
};

} // namespace eh::runtime

#endif // EH_RUNTIME_POLICY_HH
