/**
 * @file
 * Nonvolatile-processor policy [38]. All memory is nonvolatile and the
 * processor checkpoints its (tiny) volatile architectural state every
 * cycle — the tau_B = 1 extreme of the multi-backup family (Section
 * IV-A1). With dirty-register tracking only the program counter is
 * compulsory, which is why A_B ~ 0 makes frequent backups essentially
 * free (Figure 3).
 */

#ifndef EH_RUNTIME_NVP_HH
#define EH_RUNTIME_NVP_HH

#include "runtime/policy.hh"

namespace eh::runtime {

/** Configuration of the NVP policy. */
struct NvpConfig
{
    /** Instructions between backups (1 = every instruction). */
    std::uint64_t backupEveryInstructions = 1;
    /** Architectural bytes charged per backup (PC only by default). */
    std::uint64_t archBytes = 4;
};

/** Back-up-every-cycle nonvolatile processor. */
class Nvp : public BackupPolicy
{
  public:
    explicit Nvp(const NvpConfig &config);

    std::string name() const override { return "nvp"; }
    PolicyDecision beforeStep(const arch::Cpu &cpu,
                              const arch::MemPeek &peek,
                              const SupplyView &supply) override;
    void afterStep(const arch::Cpu &cpu,
                   const arch::StepResult &result) override;
    PolicyDecision onCheckpointOp(const SupplyView &supply) override;
    std::uint64_t chargedAppBackupBytes() const override { return 0; }
    std::uint64_t chargedArchBytes() const override
    {
        return cfg.archBytes;
    }
    bool savesVolatilePayload() const override { return false; }
    void onBackupCommitted(const SupplyView &supply) override;
    void onPowerFail() override;
    void onRestore() override;

    // Block-engine contract: fires purely on an instruction counter.
    // With backupEveryInstructions = 1 the horizon is always one
    // instruction, so the engine degenerates to (exact) stepping — NVP
    // is inherently a per-instruction policy.
    PolicyCaps blockCaps() const override { return {false, false}; }
    DecisionHorizon decisionHorizon() const override
    {
        DecisionHorizon h;
        h.instructions = sinceBackup >= cfg.backupEveryInstructions
                             ? 0
                             : cfg.backupEveryInstructions - sinceBackup;
        return h;
    }
    void onBlockAdvance(std::uint64_t cycles,
                        std::uint64_t instructions) override
    {
        (void)cycles;
        sinceBackup += instructions;
    }

  private:
    NvpConfig cfg;
    std::uint64_t sinceBackup = 0;
};

} // namespace eh::runtime

#endif // EH_RUNTIME_NVP_HH
