/**
 * @file
 * Hibernus-style single-backup policy (Section II / IV-B). The device
 * periodically samples its supply with an ADC; when the stored energy
 * falls below a threshold — signaling an imminent power loss — it backs
 * up all volatile state once and hibernates until the next active
 * period. The ADC sampling itself costs energy: the paper notes up to
 * 40% overhead for aggressive monitoring (Section IV-B).
 */

#ifndef EH_RUNTIME_HIBERNUS_HH
#define EH_RUNTIME_HIBERNUS_HH

#include "runtime/policy.hh"

namespace eh::runtime {

/** Configuration of the Hibernus policy. */
struct HibernusConfig
{
    /** Back up when stored/budget falls below this fraction. */
    double backupThreshold = 0.10;
    /** Cycles between ADC supply checks. */
    std::uint64_t monitorPeriod = 64;
    /** Cycles one ADC check occupies. */
    std::uint64_t adcCycles = 4;
    /** Energy one ADC check consumes (model units). */
    double adcEnergy = 400.0;
    /** Used SRAM bytes that the single backup must save. */
    std::uint64_t sramUsedBytes = 512;
};

/** Single-backup voltage-threshold policy. */
class Hibernus : public BackupPolicy
{
  public:
    explicit Hibernus(const HibernusConfig &config);

    std::string name() const override { return "hibernus"; }
    PolicyDecision beforeStep(const arch::Cpu &cpu,
                              const arch::MemPeek &peek,
                              const SupplyView &supply) override;
    void afterStep(const arch::Cpu &cpu,
                   const arch::StepResult &result) override;
    PolicyDecision onCheckpointOp(const SupplyView &supply) override;
    std::uint64_t chargedAppBackupBytes() const override;
    bool savesVolatilePayload() const override { return true; }
    void onBackupCommitted(const SupplyView &supply) override;
    void onPowerFail() override;
    void onRestore() override;

    // Block-engine contract: beforeStep() is a no-op until the next
    // ADC check is due (or forever once the single backup happened).
    PolicyCaps blockCaps() const override { return {false, false}; }
    DecisionHorizon decisionHorizon() const override
    {
        DecisionHorizon h;
        if (!backedUpThisPeriod) {
            h.cycles = cyclesSinceCheck >= cfg.monitorPeriod
                           ? 0
                           : cfg.monitorPeriod - cyclesSinceCheck;
        }
        return h;
    }
    void onBlockAdvance(std::uint64_t cycles,
                        std::uint64_t instructions) override
    {
        (void)instructions;
        cyclesSinceCheck += cycles;
    }

    /** Number of ADC checks performed (overhead characterization). */
    std::uint64_t adcChecks() const { return checks; }

  private:
    HibernusConfig cfg;
    std::uint64_t cyclesSinceCheck = 0;
    bool backedUpThisPeriod = false;
    std::uint64_t checks = 0;
};

} // namespace eh::runtime

#endif // EH_RUNTIME_HIBERNUS_HH
