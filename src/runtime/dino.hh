/**
 * @file
 * DINO/Chain-style task-boundary policy [34], [12]. The program is broken
 * into atomic tasks; a CHECKPOINT instruction marks each task boundary
 * and the runtime commits there unconditionally, saving the data the task
 * modified. Versioning at task boundaries keeps nonvolatile state
 * consistent; between boundaries a power failure rolls execution back to
 * the last committed task.
 */

#ifndef EH_RUNTIME_DINO_HH
#define EH_RUNTIME_DINO_HH

#include "mem/store_queue.hh"
#include "runtime/policy.hh"

namespace eh::runtime {

/** Configuration of the DINO policy. */
struct DinoConfig
{
    /** Used SRAM bytes (payload physically copied for correctness). */
    std::uint64_t sramUsedBytes = 512;
    /**
     * Charge backups for only the bytes dirtied since the last commit
     * (DINO's versioning granularity) rather than the whole region.
     */
    bool chargeDirtyBytesOnly = true;
};

/** Task-boundary commit policy. */
class Dino : public BackupPolicy
{
  public:
    explicit Dino(const DinoConfig &config);

    std::string name() const override { return "dino"; }
    PolicyDecision beforeStep(const arch::Cpu &cpu,
                              const arch::MemPeek &peek,
                              const SupplyView &supply) override;
    void afterStep(const arch::Cpu &cpu,
                   const arch::StepResult &result) override;
    PolicyDecision onCheckpointOp(const SupplyView &supply) override;
    std::uint64_t chargedAppBackupBytes() const override;
    bool savesVolatilePayload() const override { return true; }
    void onBackupCommitted(const SupplyView &supply) override;
    void onPowerFail() override;
    void onRestore() override;

    // Block-engine contract: DINO commits only at task boundaries
    // (CHECKPOINT instructions) and its afterStep() only records
    // volatile stores — which the engine always delivers through real
    // afterStep() calls. Everything else may be batched freely.
    PolicyCaps blockCaps() const override { return {false, false}; }

    /** Task commits so far. */
    std::uint64_t tasksCommitted() const { return commits; }

  private:
    DinoConfig cfg;
    mem::StoreQueue dirty; ///< volatile-store footprint of the open task
    std::uint64_t commits = 0;
};

} // namespace eh::runtime

#endif // EH_RUNTIME_DINO_HH
