#include "runtime/dino.hh"

namespace eh::runtime {

Dino::Dino(const DinoConfig &config) : cfg(config) {}

PolicyDecision
Dino::beforeStep(const arch::Cpu &cpu, const arch::MemPeek &peek,
                 const SupplyView &supply)
{
    (void)cpu;
    (void)peek;
    (void)supply;
    return {}; // DINO commits only at task boundaries
}

void
Dino::afterStep(const arch::Cpu &cpu, const arch::StepResult &result)
{
    (void)cpu;
    if (result.isMem && result.memIsStore && !result.memNonvolatile)
        dirty.recordStore(result.memAddr, result.memBytes);
}

PolicyDecision
Dino::onCheckpointOp(const SupplyView &supply)
{
    (void)supply;
    PolicyDecision d;
    d.action = PolicyAction::Backup; // unconditional task commit
    return d;
}

std::uint64_t
Dino::chargedAppBackupBytes() const
{
    if (cfg.chargeDirtyBytesOnly)
        return dirty.uniqueBytes();
    return cfg.sramUsedBytes;
}

void
Dino::onBackupCommitted(const SupplyView &supply)
{
    (void)supply;
    ++commits;
    dirty.clear();
}

void
Dino::onPowerFail()
{
    // The open task's dirty set is rolled back with the task itself.
    dirty.clear();
}

void
Dino::onRestore()
{
    dirty.clear();
}

} // namespace eh::runtime
