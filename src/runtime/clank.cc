#include "runtime/clank.hh"

#include "obs/trace.hh"

namespace eh::runtime {

Clank::Clank(const ClankConfig &config)
    : cfg(config),
      detector(config.readBufferEntries, config.writeBufferEntries,
               config.watchdogCycles)
{
}

PolicyDecision
Clank::beforeStep(const arch::Cpu &cpu, const arch::MemPeek &peek,
                  const SupplyView &supply)
{
    (void)cpu;
    (void)supply;
    PolicyDecision d;

    // Watchdog: fires even when the code stays idempotent (e.g. long
    // store-free stretches).
    if (detector.cyclesSinceBackup() >= detector.watchdogPeriod()) {
        if (obs::traceEnabled(obs::Category::Policy)) {
            obs::trace().instant(
                obs::Category::Policy, "clank:watchdog-backup",
                {{"cycles_since_backup",
                  static_cast<double>(detector.cyclesSinceBackup())}});
        }
        d.action = PolicyAction::Backup;
        d.reason = arch::BackupTrigger::Watchdog;
        return d;
    }

    // Consult (and update) the tracking buffers for the upcoming
    // nonvolatile access. A violation forces the backup to happen
    // *before* the store executes.
    if (peek.isMem && peek.nonvolatile) {
        const arch::BackupTrigger trigger =
            peek.isStore ? detector.onStore(peek.addr, peek.bytes)
                         : detector.onLoad(peek.addr, peek.bytes);
        if (trigger != arch::BackupTrigger::None) {
            if (obs::traceEnabled(obs::Category::Policy)) {
                obs::trace().instant(
                    obs::Category::Policy, "clank:violation-backup",
                    {{"addr", static_cast<double>(peek.addr)},
                     {"store", peek.isStore ? 1.0 : 0.0}});
            }
            d.action = PolicyAction::Backup;
            d.reason = trigger;
        }
    }
    return d;
}

void
Clank::afterStep(const arch::Cpu &cpu, const arch::StepResult &result)
{
    (void)cpu;
    // Advance the watchdog; firing is observed at the next beforeStep.
    (void)detector.tick(result.cycles);
}

PolicyDecision
Clank::onCheckpointOp(const SupplyView &supply)
{
    (void)supply;
    return {}; // Clank needs no program cooperation
}

void
Clank::onBackupCommitted(const SupplyView &supply)
{
    (void)supply;
    detector.reset();
}

void
Clank::onPowerFail()
{
    // The tracking buffers are volatile; after the restore the region
    // starts fresh from the checkpoint anyway.
    detector.reset();
}

void
Clank::onRestore()
{
    detector.reset();
}

void
Clank::setWatchdogPeriod(std::uint64_t cycles)
{
    detector.setWatchdogPeriod(cycles);
}

} // namespace eh::runtime
