#include "runtime/hibernus.hh"

#include "obs/trace.hh"
#include "util/panic.hh"

namespace eh::runtime {

Hibernus::Hibernus(const HibernusConfig &config) : cfg(config)
{
    if (cfg.backupThreshold <= 0.0 || cfg.backupThreshold >= 1.0)
        fatalf("Hibernus: backup threshold must be in (0, 1), got ",
               cfg.backupThreshold);
    if (cfg.monitorPeriod == 0)
        fatalf("Hibernus: monitor period must be > 0");
}

PolicyDecision
Hibernus::beforeStep(const arch::Cpu &cpu, const arch::MemPeek &peek,
                     const SupplyView &supply)
{
    (void)cpu;
    (void)peek;
    PolicyDecision d;
    if (backedUpThisPeriod)
        return d; // already hibernating; simulator ends the period
    if (cyclesSinceCheck < cfg.monitorPeriod)
        return d;

    // Time for an ADC supply check.
    cyclesSinceCheck = 0;
    ++checks;
    d.monitorCycles = cfg.adcCycles;
    d.monitorEnergy = cfg.adcEnergy;
    if (supply.fraction() < cfg.backupThreshold) {
        if (obs::traceEnabled(obs::Category::Policy)) {
            obs::trace().instant(
                obs::Category::Policy, "hibernus:threshold-backup",
                {{"supply_fraction", supply.fraction()},
                 {"threshold", cfg.backupThreshold}});
        }
        d.action = PolicyAction::BackupAndSleep;
        d.reason = arch::BackupTrigger::None;
    }
    return d;
}

void
Hibernus::afterStep(const arch::Cpu &cpu, const arch::StepResult &result)
{
    (void)cpu;
    cyclesSinceCheck += result.cycles;
}

PolicyDecision
Hibernus::onCheckpointOp(const SupplyView &supply)
{
    (void)supply;
    return {}; // Hibernus ignores program checkpoints entirely
}

std::uint64_t
Hibernus::chargedAppBackupBytes() const
{
    return cfg.sramUsedBytes;
}

void
Hibernus::onBackupCommitted(const SupplyView &supply)
{
    (void)supply;
    backedUpThisPeriod = true;
}

void
Hibernus::onPowerFail()
{
    cyclesSinceCheck = 0;
    backedUpThisPeriod = false;
}

void
Hibernus::onRestore()
{
    cyclesSinceCheck = 0;
    backedUpThisPeriod = false;
}

} // namespace eh::runtime
