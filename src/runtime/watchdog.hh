/**
 * @file
 * Fixed-period watchdog policy: the hypothetical mixed-volatility
 * processor of Section V-B. A parameterized timer forces a backup every
 * tau_B cycles; an unbounded store queue tracks the unique application
 * bytes modified since the last backup, which is exactly the alpha_B
 * characterization instrument behind Figure 10. Also used for the
 * fixed-interval hardware-validation experiment of Figure 5.
 */

#ifndef EH_RUNTIME_WATCHDOG_HH
#define EH_RUNTIME_WATCHDOG_HH

#include "mem/store_queue.hh"
#include "runtime/policy.hh"

namespace eh::runtime {

/** Configuration of the watchdog policy. */
struct WatchdogConfig
{
    /** Cycles between forced backups (tau_B). */
    std::uint64_t periodCycles = 1000;
    /** Used SRAM bytes (payload physically copied for correctness). */
    std::uint64_t sramUsedBytes = 512;
    /**
     * Charge backups for the unique dirty bytes since the last backup
     * (mixed-volatility store queue); otherwise charge the whole region.
     */
    bool chargeDirtyBytesOnly = true;
};

/** Periodic-timer backup policy with store-queue dirty tracking. */
class Watchdog : public BackupPolicy
{
  public:
    explicit Watchdog(const WatchdogConfig &config);

    std::string name() const override { return "watchdog"; }
    PolicyDecision beforeStep(const arch::Cpu &cpu,
                              const arch::MemPeek &peek,
                              const SupplyView &supply) override;
    void afterStep(const arch::Cpu &cpu,
                   const arch::StepResult &result) override;
    PolicyDecision onCheckpointOp(const SupplyView &supply) override;
    std::uint64_t chargedAppBackupBytes() const override;
    bool savesVolatilePayload() const override { return true; }
    void onBackupCommitted(const SupplyView &supply) override;
    void onPowerFail() override;
    void onRestore() override;

    // Block-engine contract: beforeStep() fires only when the timer
    // elapses and afterStep() only accumulates cycles plus the store
    // queue, which the engine feeds through real afterStep() calls.
    PolicyCaps blockCaps() const override { return {false, false}; }
    DecisionHorizon decisionHorizon() const override
    {
        DecisionHorizon h;
        h.cycles = sinceBackup >= cfg.periodCycles
                       ? 0
                       : cfg.periodCycles - sinceBackup;
        return h;
    }
    void onBlockAdvance(std::uint64_t cycles,
                        std::uint64_t instructions) override
    {
        (void)instructions;
        sinceBackup += cycles;
    }

    /** Unique dirty bytes currently pending (alpha_B instrument). */
    std::size_t pendingDirtyBytes() const { return dirty.uniqueBytes(); }

    /** Cycles since the last backup. */
    std::uint64_t cyclesSinceBackup() const { return sinceBackup; }

    /** Change the timer period (parameter sweeps). */
    void setPeriod(std::uint64_t cycles);

  private:
    WatchdogConfig cfg;
    mem::StoreQueue dirty;
    std::uint64_t sinceBackup = 0;
};

} // namespace eh::runtime

#endif // EH_RUNTIME_WATCHDOG_HH
