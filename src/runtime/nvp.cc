#include "runtime/nvp.hh"

#include "util/panic.hh"

namespace eh::runtime {

Nvp::Nvp(const NvpConfig &config) : cfg(config)
{
    if (cfg.backupEveryInstructions == 0)
        fatalf("Nvp: backup interval must be > 0 instructions");
}

PolicyDecision
Nvp::beforeStep(const arch::Cpu &cpu, const arch::MemPeek &peek,
                const SupplyView &supply)
{
    (void)cpu;
    (void)peek;
    (void)supply;
    PolicyDecision d;
    if (sinceBackup >= cfg.backupEveryInstructions) {
        d.action = PolicyAction::Backup;
        d.reason = arch::BackupTrigger::Watchdog;
    }
    return d;
}

void
Nvp::afterStep(const arch::Cpu &cpu, const arch::StepResult &result)
{
    (void)cpu;
    (void)result;
    ++sinceBackup;
}

PolicyDecision
Nvp::onCheckpointOp(const SupplyView &supply)
{
    (void)supply;
    return {};
}

void
Nvp::onBackupCommitted(const SupplyView &supply)
{
    (void)supply;
    sinceBackup = 0;
}

void
Nvp::onPowerFail()
{
    sinceBackup = 0;
}

void
Nvp::onRestore()
{
    sinceBackup = 0;
}

} // namespace eh::runtime
