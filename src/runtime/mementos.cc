#include "runtime/mementos.hh"

#include "util/panic.hh"

namespace eh::runtime {

Mementos::Mementos(const MementosConfig &config) : cfg(config)
{
    if (cfg.backupThreshold <= 0.0 || cfg.backupThreshold > 1.0)
        fatalf("Mementos: backup threshold must be in (0, 1], got ",
               cfg.backupThreshold);
}

PolicyDecision
Mementos::beforeStep(const arch::Cpu &cpu, const arch::MemPeek &peek,
                     const SupplyView &supply)
{
    (void)cpu;
    (void)peek;
    (void)supply;
    return {}; // Mementos acts only at checkpoint instructions
}

void
Mementos::afterStep(const arch::Cpu &cpu, const arch::StepResult &result)
{
    (void)cpu;
    (void)result;
}

PolicyDecision
Mementos::onCheckpointOp(const SupplyView &supply)
{
    ++seen;
    PolicyDecision d;
    d.monitorCycles = cfg.checkCycles;
    d.monitorEnergy = cfg.checkEnergy;
    if (supply.fraction() < cfg.backupThreshold) {
        ++taken;
        d.action = PolicyAction::Backup;
    }
    return d;
}

std::uint64_t
Mementos::chargedAppBackupBytes() const
{
    return cfg.sramUsedBytes;
}

} // namespace eh::runtime
