/**
 * @file
 * Hibernus++-style self-calibrating single-backup policy [5]. Plain
 * Hibernus needs its backup threshold hand-tuned to the platform: too
 * low and the backup browns out, too high and usable energy is wasted
 * asleep. Hibernus++ measures how much energy its backup actually needs
 * and adapts the threshold period by period, converging to the minimum
 * safe margin without platform-specific configuration.
 */

#ifndef EH_RUNTIME_HIBERNUS_PP_HH
#define EH_RUNTIME_HIBERNUS_PP_HH

#include "runtime/policy.hh"

namespace eh::runtime {

/** Configuration of the adaptive single-backup policy. */
struct HibernusPPConfig
{
    /** Initial (conservative) threshold fraction. */
    double initialThreshold = 0.5;
    /** Safety margin multiplier on the measured backup energy. */
    double safetyMargin = 1.5;
    /** Smallest threshold the adaptation may reach. */
    double minThreshold = 0.02;
    /** Cycles between ADC supply checks. */
    std::uint64_t monitorPeriod = 64;
    /** Cycles one ADC check occupies. */
    std::uint64_t adcCycles = 4;
    /** Energy one ADC check consumes. */
    double adcEnergy = 400.0;
    /** Used SRAM bytes the single backup must save. */
    std::uint64_t sramUsedBytes = 512;
    /** Exponential smoothing factor for the threshold update (0, 1]. */
    double adaptRate = 0.5;
};

/**
 * Adaptive single-backup policy. Observes the supply level before and
 * after each committed backup, estimates the true backup cost, and
 * steers the hibernation threshold to safetyMargin times that cost. A
 * backup that browns out (power failure before commit) immediately
 * doubles the threshold — the recovery path real Hibernus++ uses after a
 * mis-calibration.
 */
class HibernusPP : public BackupPolicy
{
  public:
    explicit HibernusPP(const HibernusPPConfig &config);

    std::string name() const override { return "hibernus++"; }
    PolicyDecision beforeStep(const arch::Cpu &cpu,
                              const arch::MemPeek &peek,
                              const SupplyView &supply) override;
    void afterStep(const arch::Cpu &cpu,
                   const arch::StepResult &result) override;
    PolicyDecision onCheckpointOp(const SupplyView &supply) override;
    std::uint64_t chargedAppBackupBytes() const override;
    bool savesVolatilePayload() const override { return true; }
    void onBackupCommitted(const SupplyView &supply) override;
    void onPowerFail() override;
    void onRestore() override;

    // Block-engine contract: identical shape to Hibernus — quiet until
    // the next ADC check is due, quiet forever once backed up.
    PolicyCaps blockCaps() const override { return {false, false}; }
    DecisionHorizon decisionHorizon() const override
    {
        DecisionHorizon h;
        if (!backedUpThisPeriod) {
            h.cycles = cyclesSinceCheck >= cfg.monitorPeriod
                           ? 0
                           : cfg.monitorPeriod - cyclesSinceCheck;
        }
        return h;
    }
    void onBlockAdvance(std::uint64_t cycles,
                        std::uint64_t instructions) override
    {
        (void)instructions;
        cyclesSinceCheck += cycles;
    }

    /** Current adapted threshold fraction (tests/telemetry). */
    double threshold() const { return thresholdFraction; }

    /** Number of threshold adaptations performed. */
    std::uint64_t adaptations() const { return adapted; }

  private:
    HibernusPPConfig cfg;
    double thresholdFraction;
    std::uint64_t cyclesSinceCheck = 0;
    bool backedUpThisPeriod = false;
    bool backupInFlight = false;
    double storedAtTrigger = 0.0;
    double lastBudget = 0.0;
    std::uint64_t adapted = 0;
};

} // namespace eh::runtime

#endif // EH_RUNTIME_HIBERNUS_PP_HH
