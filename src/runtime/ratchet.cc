#include "runtime/ratchet.hh"

#include "util/panic.hh"

namespace eh::runtime {

Ratchet::Ratchet(const RatchetConfig &config) : cfg(config)
{
    if (cfg.maxSectionCycles == 0)
        fatalf("Ratchet: section cap must be > 0 cycles");
}

PolicyDecision
Ratchet::beforeStep(const arch::Cpu &cpu, const arch::MemPeek &peek,
                    const SupplyView &supply)
{
    (void)cpu;
    (void)supply;
    PolicyDecision d;
    if (sectionCycles >= cfg.maxSectionCycles) {
        d.action = PolicyAction::Backup;
        d.reason = arch::BackupTrigger::Watchdog;
        return d;
    }
    // Conservative compile-time rule: a nonvolatile store after any
    // nonvolatile load might be a WAR — break the section first.
    if (peek.isMem && peek.nonvolatile && peek.isStore && loadSeen) {
        ++breaks;
        d.action = PolicyAction::Backup;
        d.reason = arch::BackupTrigger::Violation;
    }
    return d;
}

void
Ratchet::afterStep(const arch::Cpu &cpu, const arch::StepResult &result)
{
    (void)cpu;
    sectionCycles += result.cycles;
    if (result.isMem && result.memNonvolatile && !result.memIsStore)
        loadSeen = true;
}

PolicyDecision
Ratchet::onCheckpointOp(const SupplyView &supply)
{
    (void)supply;
    return {}; // sections are compiler-defined, not program-defined
}

void
Ratchet::onBackupCommitted(const SupplyView &supply)
{
    (void)supply;
    loadSeen = false;
    sectionCycles = 0;
}

void
Ratchet::onPowerFail()
{
    loadSeen = false;
    sectionCycles = 0;
}

void
Ratchet::onRestore()
{
    loadSeen = false;
    sectionCycles = 0;
}

} // namespace eh::runtime
