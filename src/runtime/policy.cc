#include "runtime/policy.hh"

// The interface is header-only; this translation unit anchors the vtable.

namespace eh::runtime {

} // namespace eh::runtime
