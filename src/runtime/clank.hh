/**
 * @file
 * Clank policy [22]: hardware idempotency tracking (Section V-B).
 * Application data lives in nonvolatile memory; only the registers and PC
 * are volatile. Backups are forced (1) before a store that would violate
 * idempotency of the region executed since the last checkpoint, (2) when
 * a tracking buffer overflows, or (3) when the watchdog period elapses.
 * Because data is already nonvolatile, a backup saves only architectural
 * state — the Cortex-M0+'s 20 32-bit registers in the paper's setup.
 */

#ifndef EH_RUNTIME_CLANK_HH
#define EH_RUNTIME_CLANK_HH

#include "runtime/policy.hh"

namespace eh::runtime {

/** Configuration of the Clank policy. */
struct ClankConfig
{
    std::size_t readBufferEntries = 8;
    std::size_t writeBufferEntries = 8;
    std::uint64_t watchdogCycles = 8000;
    /** Architectural bytes charged per backup (20 x 32-bit registers). */
    std::uint64_t archBytes = 80;
};

/** Idempotency-violation-triggered policy. */
class Clank : public BackupPolicy
{
  public:
    explicit Clank(const ClankConfig &config);

    std::string name() const override { return "clank"; }
    PolicyDecision beforeStep(const arch::Cpu &cpu,
                              const arch::MemPeek &peek,
                              const SupplyView &supply) override;
    void afterStep(const arch::Cpu &cpu,
                   const arch::StepResult &result) override;
    PolicyDecision onCheckpointOp(const SupplyView &supply) override;
    std::uint64_t chargedAppBackupBytes() const override { return 0; }
    std::uint64_t chargedArchBytes() const override
    {
        return cfg.archBytes;
    }
    bool savesVolatilePayload() const override { return false; }
    void onBackupCommitted(const SupplyView &supply) override;
    void onPowerFail() override;
    void onRestore() override;

    // Block-engine contract: the tracking buffers consume MemPeek data
    // (needsPeek), so every load/store runs under the exact
    // per-instruction protocol; between memory accesses only the
    // watchdog can fire, bounded by the cycles left in its period.
    PolicyCaps blockCaps() const override { return {true, false}; }
    DecisionHorizon decisionHorizon() const override
    {
        DecisionHorizon h;
        const std::uint64_t since = detector.cyclesSinceBackup();
        const std::uint64_t period = detector.watchdogPeriod();
        h.cycles = since >= period ? 0 : period - since;
        return h;
    }
    void onBlockAdvance(std::uint64_t cycles,
                        std::uint64_t instructions) override
    {
        (void)instructions;
        (void)detector.tick(cycles);
    }

    /** Detection hardware (tests and characterization reach in). */
    const arch::IdempotencyTracker &tracker() const { return detector; }

    /** Adjust the watchdog period (design-space sweeps). */
    void setWatchdogPeriod(std::uint64_t cycles);

  private:
    ClankConfig cfg;
    arch::IdempotencyTracker detector;
};

} // namespace eh::runtime

#endif // EH_RUNTIME_CLANK_HH
