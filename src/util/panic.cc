#include "util/panic.hh"

#include <cstdio>

namespace eh {

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

namespace detail {

int
reportMainError(int code, bool internal, const std::string &what) noexcept
{
    // fatal()/panic() messages already carry their "fatal:"/"panic:"
    // prefix; foreign exceptions (bad_alloc, logic bugs in callers) get
    // labeled here so the exit code is always explicable from the line.
    const bool tagged = what.rfind("fatal: ", 0) == 0 ||
                        what.rfind("panic: ", 0) == 0;
    std::fprintf(stderr, "%s%s\n",
                 tagged ? "" : (internal ? "internal error: " : "error: "),
                 what.c_str());
    if (internal)
        std::fprintf(stderr,
                     "(this is a bug in the EH model library — please "
                     "report it)\n");
    return code;
}

} // namespace detail

} // namespace eh
