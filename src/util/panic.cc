#include "util/panic.hh"

namespace eh {

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

} // namespace eh
