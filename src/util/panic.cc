#include "util/panic.hh"

#include <cstdio>

#include "util/chaos.hh"

namespace eh {

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

namespace detail {

int
reportMainError(int code, bool internal, const std::string &what) noexcept
{
    // fatal()/panic() messages already carry their "fatal:"/"panic:"
    // prefix; foreign exceptions (bad_alloc, logic bugs in callers) get
    // labeled here so the exit code is always explicable from the line.
    const bool tagged = what.rfind("fatal: ", 0) == 0 ||
                        what.rfind("panic: ", 0) == 0;
    std::fprintf(stderr, "%s%s\n",
                 tagged ? "" : (internal ? "internal error: " : "error: "),
                 what.c_str());
    if (internal)
        std::fprintf(stderr,
                     "(this is a bug in the EH model library — please "
                     "report it)\n");
    return code;
}

void
validateStartupEnv()
{
    // Forces the EH_CHAOS parse (throws FatalError on a malformed
    // spec) before the program body runs; see the header comment.
    (void)chaos::enabled();
}

} // namespace detail

} // namespace eh
