/**
 * @file
 * Durable file I/O primitives for the on-disk stores (explore result
 * segments, checkpoint sidecars): explicit fsync of files and their
 * containing directories, and an atomic write-then-rename commit so a
 * reader never observes a half-written file. POSIX rename() within one
 * directory is atomic; pairing it with an fsync of the temporary file
 * *before* the rename and of the directory *after* gives the classic
 * crash-safe publication protocol (write tmp → fsync tmp → rename →
 * fsync dir). On platforms without fsync these helpers degrade to
 * best-effort buffered I/O rather than failing.
 */

#ifndef EH_UTIL_FSIO_HH
#define EH_UTIL_FSIO_HH

#include <cstdint>
#include <string>

namespace eh {

/**
 * fsync an open POSIX file descriptor. Returns false (and leaves errno
 * set) on failure; a no-op returning true where fsync is unavailable.
 */
bool fsyncFd(int fd);

/**
 * fsync the directory at @p dir so a rename or file creation inside it
 * is durable. Best-effort: returns false on failure, true elsewhere.
 */
bool fsyncDir(const std::string &dir);

/**
 * Atomically publish @p bytes at @p path: write to `<path>.tmp`, fsync
 * it, rename over @p path, fsync the parent directory. A crash at any
 * point leaves either the old file (or nothing) or the complete new
 * file — never a torn one.
 * @throws FatalError on I/O errors.
 */
void writeFileAtomic(const std::string &path, const std::string &bytes);

/**
 * Read a whole file into @p out (binary). Returns false when the file
 * cannot be opened; partial reads throw FatalError.
 */
bool readFileBytes(const std::string &path, std::string &out);

/** Little-endian scalar append/read helpers for binary file formats. */
void putLe32(std::string &out, std::uint32_t v);
void putLe64(std::string &out, std::uint64_t v);

/**
 * Read a little-endian scalar at @p at; returns false when fewer than
 * the needed bytes remain. @p at advances past the value on success.
 */
bool getLe32(const std::string &in, std::size_t &at, std::uint32_t &v);
bool getLe64(const std::string &in, std::size_t &at, std::uint64_t &v);

} // namespace eh

#endif // EH_UTIL_FSIO_HH
