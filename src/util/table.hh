/**
 * @file
 * Fixed-width console table printer used by the benchmark harnesses to
 * render each figure/table of the paper as readable rows.
 */

#ifndef EH_UTIL_TABLE_HH
#define EH_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace eh {

/**
 * Accumulates rows of cells and renders them with aligned columns.
 * Numeric helpers format with a fixed precision for stable output.
 */
class Table
{
  public:
    /** @param header Column titles; fixes the table width. */
    explicit Table(std::vector<std::string> header);

    /** Append one row of preformatted cells. */
    void row(std::vector<std::string> cells);

    /** Format a double with @p precision decimal places. */
    static std::string num(double v, int precision = 4);

    /** Format a double as a percentage with @p precision decimals. */
    static std::string pct(double fraction, int precision = 2);

    /** Render the table to @p out with a separator under the header. */
    void print(std::ostream &out) const;

    /** Number of data rows. */
    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

} // namespace eh

#endif // EH_UTIL_TABLE_HH
