#include "util/fsio.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/panic.hh"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace eh {

bool
fsyncFd(int fd)
{
#ifndef _WIN32
    return ::fsync(fd) == 0;
#else
    (void)fd;
    return true;
#endif
}

bool
fsyncDir(const std::string &dir)
{
#ifndef _WIN32
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
#else
    (void)dir;
    return true;
#endif
}

void
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    const std::string tmp = path + ".tmp";
#ifndef _WIN32
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        fatalf("cannot create '", tmp, "' for atomic write");
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ::ssize_t n =
            ::write(fd, bytes.data() + done, bytes.size() - done);
        if (n < 0) {
            ::close(fd);
            ::unlink(tmp.c_str());
            fatalf("short write to '", tmp, "'");
        }
        done += static_cast<std::size_t>(n);
    }
    if (!fsyncFd(fd)) {
        ::close(fd);
        ::unlink(tmp.c_str());
        fatalf("fsync of '", tmp, "' failed");
    }
    ::close(fd);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        fatalf("cannot rename '", tmp, "' over '", path, "'");
    }
#else
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatalf("cannot create '", tmp, "' for atomic write");
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            fatalf("short write to '", tmp, "'");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        fatalf("cannot rename '", tmp, "' over '", path, "'");
#endif
    const auto parent = std::filesystem::path(path).parent_path();
    fsyncDir(parent.empty() ? "." : parent.string());
}

bool
readFileBytes(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return false;
    const std::streamoff size = in.tellg();
    if (size < 0)
        fatalf("read of '", path, "' failed");
    std::string buf(static_cast<std::size_t>(size), '\0');
    in.seekg(0);
    in.read(buf.data(), size);
    if (in.gcount() != size || in.bad())
        fatalf("read of '", path, "' failed");
    out = std::move(buf);
    return true;
}

void
putLe32(std::string &out, std::uint32_t v)
{
    for (int k = 0; k < 4; ++k)
        out += static_cast<char>((v >> (8 * k)) & 0xff);
}

void
putLe64(std::string &out, std::uint64_t v)
{
    for (int k = 0; k < 8; ++k)
        out += static_cast<char>((v >> (8 * k)) & 0xff);
}

bool
getLe32(const std::string &in, std::size_t &at, std::uint32_t &v)
{
    if (at + 4 > in.size())
        return false;
    v = 0;
    for (int k = 0; k < 4; ++k) {
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(in[at + k]))
             << (8 * k);
    }
    at += 4;
    return true;
}

bool
getLe64(const std::string &in, std::size_t &at, std::uint64_t &v)
{
    if (at + 8 > in.size())
        return false;
    v = 0;
    for (int k = 0; k < 8; ++k) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[at + k]))
             << (8 * k);
    }
    at += 8;
    return true;
}

} // namespace eh
