#include "util/chaos.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <cerrno>

#ifndef _WIN32
#include <fcntl.h>
#include <pthread.h>
#include <unistd.h>
#endif

#include "util/hash.hh"
#include "util/panic.hh"

namespace eh::chaos {

namespace {

enum class Kind
{
    Crash,  ///< crash=<site>[@n]
    Enospc, ///< enospc=<site>[@n]
    Delay,  ///< delay=<site>@<ms>
};

struct Directive
{
    Kind kind = Kind::Crash;
    std::string site;
    std::uint64_t arg = 1; ///< hit count (crash/enospc) or ms (delay)
};

struct Config
{
    bool active = false;
    bool armed = true; ///< false once the fuse says "already fired"
    std::uint64_t seed = 0;
    unsigned shortIoPermille = 0;
    unsigned eintrPermille = 0;
    std::vector<Directive> directives;
    std::string fusePath;
    std::string raw;
};

std::atomic<bool> configured{false};
std::mutex mutex; // guards config + hit counters
Config config;
std::map<std::string, std::uint64_t> hits; ///< per-site hit counts

std::uint64_t
parseU64(const std::string &text, const char *what)
{
    if (text.empty())
        fatalf("EH_CHAOS: empty ", what);
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        fatalf("EH_CHAOS: '", text, "' is not a valid ", what);
    return static_cast<std::uint64_t>(v);
}

/** Parse `EH_CHAOS=<seed>:<directive>,…` into @p out. */
void
parseSpec(const std::string &raw, Config &out)
{
    const std::size_t colon = raw.find(':');
    if (colon == std::string::npos) {
        fatalf("EH_CHAOS: expected '<seed>:<directives>', got '", raw,
               "'");
    }
    out.seed = parseU64(raw.substr(0, colon), "seed");
    std::stringstream ss(raw.substr(colon + 1));
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            fatalf("EH_CHAOS: directive '", item, "' lacks '='");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "shortio") {
            out.shortIoPermille = static_cast<unsigned>(
                parseU64(value, "shortio permille"));
        } else if (key == "eintr") {
            out.eintrPermille = static_cast<unsigned>(
                parseU64(value, "eintr permille"));
        } else if (key == "crash" || key == "enospc" ||
                   key == "delay") {
            Directive d;
            d.kind = key == "crash"
                         ? Kind::Crash
                         : (key == "enospc" ? Kind::Enospc
                                            : Kind::Delay);
            const std::size_t at = value.find('@');
            d.site = value.substr(0, at);
            if (d.site.empty())
                fatalf("EH_CHAOS: directive '", item,
                       "' names no site");
            if (at != std::string::npos) {
                d.arg = parseU64(value.substr(at + 1),
                                 key == "delay" ? "delay ms"
                                                : "hit count");
            } else if (key == "delay") {
                fatalf("EH_CHAOS: delay needs '@<ms>': '", item, "'");
            }
            if (d.kind != Kind::Delay && d.arg == 0)
                fatalf("EH_CHAOS: hit count must be >= 1: '", item,
                       "'");
            out.directives.push_back(std::move(d));
        } else {
            fatalf("EH_CHAOS: unknown directive '", key,
                   "' (want crash/enospc/delay/shortio/eintr)");
        }
    }
}

/** Parse the environment once (or again under resetForTest). */
void
loadLocked()
{
    config = Config{};
    hits.clear();
    const char *env = std::getenv("EH_CHAOS");
    if (env != nullptr && *env != '\0') {
        config.raw = env;
        parseSpec(config.raw, config);
        config.active = true;
    }
    if (const char *fuse = std::getenv("EH_CHAOS_FUSE")) {
        config.fusePath = fuse;
#ifndef _WIN32
        if (!config.fusePath.empty() &&
            ::access(config.fusePath.c_str(), F_OK) == 0) {
            config.armed = false; // a previous process already fired
        }
#endif
    }
    configured.store(true, std::memory_order_release);
}

void
ensureLoaded()
{
    if (configured.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(mutex);
    if (!configured.load(std::memory_order_relaxed))
        loadLocked();
}

#ifndef _WIN32
/**
 * Forked children must not inherit the parent's parsed chaos state: a
 * supervisor parses EH_CHAOS before the fuse exists, and a broker
 * child forked after the fuse burnt would otherwise stay armed and
 * crash on every respawn until the respawn budget is gone. The child
 * handler discards the snapshot so the child re-reads the environment
 * (and the fuse) at its first site hit, with its own hit counters —
 * the same per-process semantics an exec'd child gets for free. The
 * prepare/parent pair holds the mutex across fork so the child's
 * copy is in a known state before it is reset.
 */
struct AtforkRegistrar
{
    AtforkRegistrar()
    {
        ::pthread_atfork(
            [] { mutex.lock(); },
            [] { mutex.unlock(); },
            [] {
                // loadLocked() clears the hit counters on the next
                // ensureLoaded(); keep this handler allocation-free.
                configured.store(false, std::memory_order_release);
                mutex.unlock();
            });
    }
};
AtforkRegistrar atforkRegistrar;
#endif

/** Deterministic per-(seed, site, hit) draw in [0, 2^64). */
std::uint64_t
draw(const char *site, std::uint64_t hit, std::uint64_t salt)
{
    return hashMix(config.seed ^ fnv1a(site) ^ (hit * 0x9e3779b97f4a7c15ull) ^
                   salt);
}

/** Burn the one-shot fuse (best effort) before firing. */
void
burnFuse()
{
#ifndef _WIN32
    if (config.fusePath.empty())
        return;
    const int fd = ::open(config.fusePath.c_str(),
                          O_CREAT | O_WRONLY | O_CLOEXEC, 0644);
    if (fd >= 0)
        ::close(fd);
#endif
}

[[noreturn]] void
crashNow(const char *site, std::uint64_t hit)
{
    burnFuse();
    // Raw write: stderr buffers must not matter in a process that is
    // about to die without flushing anything.
    std::string line = detail::concat("eh-chaos: crash at '", site,
                                      "' hit ", hit, " (seed ",
                                      config.seed, ")\n");
#ifndef _WIN32
    [[maybe_unused]] const ssize_t n =
        ::write(2, line.data(), line.size());
    ::_exit(chaosExitCode);
#else
    std::_Exit(chaosExitCode);
#endif
}

/**
 * Record a hit of @p site and run its crash/delay directives.
 * Returns the 1-based hit index.
 */
std::uint64_t
hitLocked(const char *site)
{
    const std::uint64_t hit = ++hits[site];
    unsigned delayMs = 0;
    bool crash = false;
    for (const Directive &d : config.directives) {
        if (d.site != site)
            continue;
        if (d.kind == Kind::Delay)
            delayMs = static_cast<unsigned>(d.arg);
        else if (d.kind == Kind::Crash && config.armed && hit == d.arg)
            crash = true;
    }
    if (delayMs > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delayMs));
    }
    if (crash)
        crashNow(site, hit);
    return hit;
}

} // namespace

bool
enabled()
{
    ensureLoaded();
    return config.active;
}

std::uint64_t
seed()
{
    ensureLoaded();
    return config.seed;
}

void
point(const char *site)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex);
    hitLocked(site);
}

bool
failPoint(const char *site, int &err)
{
    if (!enabled())
        return false;
    std::lock_guard<std::mutex> lock(mutex);
    const std::uint64_t hit = hitLocked(site);
    for (const Directive &d : config.directives) {
        if (d.kind == Kind::Enospc && d.site == site &&
            config.armed && hit == d.arg) {
            burnFuse();
            err = ENOSPC;
            return true;
        }
    }
    return false;
}

std::size_t
clampIo(const char *site, std::size_t want)
{
    if (!enabled() || want <= 1)
        return want;
    std::lock_guard<std::mutex> lock(mutex);
    if (config.shortIoPermille == 0)
        return want;
    const std::uint64_t hit = ++hits[detail::concat(site, "#io")];
    if (draw(site, hit, 0x10) % 1000 >= config.shortIoPermille)
        return want;
    return 1 + static_cast<std::size_t>(draw(site, hit, 0x11) %
                                        (want - 1));
}

bool
spuriousEintr(const char *site)
{
    if (!enabled())
        return false;
    std::lock_guard<std::mutex> lock(mutex);
    if (config.eintrPermille == 0)
        return false;
    const std::uint64_t hit = ++hits[detail::concat(site, "#eintr")];
    return draw(site, hit, 0x20) % 1000 < config.eintrPermille;
}

std::string
describe()
{
    ensureLoaded();
    if (!config.active)
        return "chaos: disabled";
    std::lock_guard<std::mutex> lock(mutex);
    return detail::concat("chaos: EH_CHAOS=", config.raw,
                          config.armed ? "" : " (fuse burnt: crash/"
                                              "enospc disarmed)");
}

void
resetForTest()
{
    std::lock_guard<std::mutex> lock(mutex);
    loadLocked();
}

} // namespace eh::chaos
