/**
 * @file
 * Stable 64-bit content hashing (FNV-1a) for the exploration engine's
 * job keys and result cache. The hash is part of the on-disk cache
 * format, so it must never depend on the platform, the standard
 * library's std::hash, or pointer values — only on the bytes fed in.
 */

#ifndef EH_UTIL_HASH_HH
#define EH_UTIL_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace eh {

/** FNV-1a offset basis (64-bit). */
constexpr std::uint64_t fnv1aBasis = 0xcbf29ce484222325ull;

/** Fold one byte into an FNV-1a state. */
constexpr std::uint64_t
fnv1aByte(std::uint64_t h, std::uint8_t byte)
{
    return (h ^ byte) * 0x100000001b3ull;
}

/** FNV-1a over a byte span, continuing from @p h. */
constexpr std::uint64_t
fnv1a(std::string_view bytes, std::uint64_t h = fnv1aBasis)
{
    for (char c : bytes)
        h = fnv1aByte(h, static_cast<std::uint8_t>(c));
    return h;
}

/**
 * Final avalanche (splitmix64 finalizer). FNV-1a alone mixes low bits
 * weakly; jobs differing only in a trailing digit must still land far
 * apart because Rng sub-streams are derived from these hashes.
 */
constexpr std::uint64_t
hashMix(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Stable content hash of a string: avalanched FNV-1a. */
constexpr std::uint64_t
contentHash(std::string_view bytes)
{
    return hashMix(fnv1a(bytes));
}

/** Fixed-width lowercase hex rendering of a 64-bit hash. */
std::string hashHex(std::uint64_t h);

/** Parse a hashHex() string; returns false on malformed input. */
bool parseHashHex(std::string_view hex, std::uint64_t &out);

} // namespace eh

#endif // EH_UTIL_HASH_HH
