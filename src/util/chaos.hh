/**
 * @file
 * Deterministic fault-injection registry for the whole pipeline
 * (docs/ROBUSTNESS.md, docs/SERVICE.md): the `scripts/crash_harness.sh`
 * idea — kill a process at a chosen instruction and prove the system
 * recovers — generalized from the result store to the wire protocol,
 * broker, worker and client. Instrumented code calls named *sites*:
 *
 *   chaos::point("broker.result.recv");            // crash/delay site
 *   if (chaos::failPoint("store.append", err)) …   // errno injection
 *   n = chaos::clampIo("net.send", n);             // short read/write
 *   if (chaos::spuriousEintr("net.recv")) …        // EINTR storm
 *
 * All sites are inert (one relaxed atomic load) unless `EH_CHAOS` is
 * set:
 *
 *   EH_CHAOS=<seed>:<directive>[,<directive>…]
 *
 *   crash=<site>[@<n>]     _exit(chaosExitCode) at the n-th hit
 *                          (default 1) of <site> — simulates kill -9:
 *                          no destructors, no atexit, no flush
 *   enospc=<site>[@<n>]    inject ENOSPC at the n-th hit of <site>
 *   delay=<site>@<ms>      sleep <ms> at every hit of <site>
 *   shortio=<permille>     clamp I/O at clampIo() sites to a short
 *                          length with probability permille/1000
 *   eintr=<permille>       report a spurious EINTR at spuriousEintr()
 *                          sites with probability permille/1000
 *
 * Determinism: probability draws hash (seed, site, per-site hit index)
 * — never time, pid, or thread identity — so a run with a fixed seed
 * makes exactly the same injections every time, in every process.
 *
 * One-shot fuse: when `EH_CHAOS_FUSE=<path>` is also set, a crash or
 * errno injection first creates <path>; a process that starts with
 * <path> already present disarms crash= and enospc= directives (the
 * sustained shortio/eintr/delay noise stays). A supervised process
 * therefore dies exactly once and its respawn runs clean — the exact
 * "any process may die at any instruction, once" contract the chaos
 * harness sweeps. Forked children do not inherit the parent's parsed
 * snapshot: a pthread_atfork handler makes the child re-read the
 * environment and the fuse at its first site hit, with fresh hit
 * counters — so a broker forked by its supervisor before the fuse
 * burnt still disarms on respawn, exactly like an exec'd worker.
 *
 * A malformed EH_CHAOS value is a fatal error, never a silent no-op: a
 * typo must not quietly disable the fault a test believes it injected.
 */

#ifndef EH_UTIL_CHAOS_HH
#define EH_UTIL_CHAOS_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace eh::chaos {

/** Exit code of a chaos-scheduled crash (distinct from real faults). */
constexpr int chaosExitCode = 86;

/** True when EH_CHAOS is set and parsed (cheap: one atomic load). */
bool enabled();

/** The seed parsed from EH_CHAOS (0 when disabled). */
std::uint64_t seed();

/**
 * Hit a crash/delay site: sleeps under a matching delay= directive and
 * does-not-return under a matching crash= directive whose hit count is
 * reached (the process _exit()s with chaosExitCode after an stderr
 * one-liner and the fuse write).
 */
void point(const char *site);

/**
 * Hit an errno-injection site. Returns true when a matching enospc=
 * directive fires; @p err receives the errno to fail with. Also
 * honours crash=/delay= directives on the same site first.
 */
bool failPoint(const char *site, int &err);

/**
 * Clamp an I/O length at @p site: under shortio=, returns a value in
 * [1, want] chosen deterministically; otherwise returns @p want
 * unchanged. A zero @p want is returned as-is.
 */
std::size_t clampIo(const char *site, std::size_t want);

/** True when an eintr= directive fires at @p site this hit. */
bool spuriousEintr(const char *site);

/** One-line human description of the active configuration. */
std::string describe();

/**
 * Re-read EH_CHAOS / EH_CHAOS_FUSE and reset all hit counters.
 * Tests only — production processes parse once at first use.
 */
void resetForTest();

} // namespace eh::chaos

#endif // EH_UTIL_CHAOS_HH
