#include "util/log.hh"

#include <atomic>
#include <mutex>

namespace eh {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Info};

/**
 * One mutex for every emission path. Campaign workers log concurrently;
 * without it, partial lines from different threads interleave on
 * stderr. Each message is composed into a single string first and
 * written with one stream insertion while the lock is held.
 */
std::mutex &
emitMutex()
{
    static std::mutex m;
    return m;
}

/** True while the last emission was an unterminated status line. */
bool statusLineOpen = false; // guarded by emitMutex()

} // namespace

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

namespace detail {

void
emit(LogLevel level, const std::string &tag, const std::string &msg)
{
    std::ostream &out = (level == LogLevel::Warn) ? std::cerr : std::cout;
    const std::string line = "[" + tag + "] " + msg + "\n";
    std::lock_guard<std::mutex> lock(emitMutex());
    if (statusLineOpen) {
        // Finish the in-place status line so the message gets its own
        // row instead of splicing into the progress display.
        std::cerr << "\n";
        statusLineOpen = false;
    }
    out << line;
}

} // namespace detail

void
statusLine(const std::string &text, bool done)
{
    if (static_cast<int>(LogLevel::Info) <
        static_cast<int>(logLevel())) {
        return; // --quiet silences progress like any Info message
    }
    std::lock_guard<std::mutex> lock(emitMutex());
    std::cerr << "\r" << text;
    if (done) {
        std::cerr << "\n";
        statusLineOpen = false;
    } else {
        statusLineOpen = true;
    }
    std::cerr.flush();
}

} // namespace eh
