#include "util/log.hh"

#include <atomic>
#include <mutex>

#ifdef _WIN32
#define EH_LOG_STDERR_IS_TTY() true
#else
#include <unistd.h>
#define EH_LOG_STDERR_IS_TTY() (isatty(2) != 0)
#endif

namespace eh {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Info};

/**
 * One mutex for every emission path. Campaign workers log concurrently;
 * without it, partial lines from different threads interleave on
 * stderr. Each message is composed into a single string first and
 * written with one stream insertion while the lock is held.
 */
std::mutex &
emitMutex()
{
    static std::mutex m;
    return m;
}

/** True while the last emission was an unterminated status line. */
bool statusLineOpen = false; // guarded by emitMutex()

/**
 * PID suffix for log tags when stderr is redirected. The exploration
 * service runs a broker and N worker processes whose output commonly
 * funnels into one pipe or CI log; tagging each line with its source
 * PID keeps the interleaving attributable. On a TTY (one interactive
 * process) the prefix is pure noise, so it is omitted. Evaluated once:
 * a process's stderr destination does not change mid-run, and fork+exec
 * re-initializes it in the child.
 */
const std::string &
pidSuffix()
{
    static const std::string suffix = EH_LOG_STDERR_IS_TTY()
#ifdef _WIN32
        ? std::string()
        : std::string();
#else
        ? std::string()
        : ":" + std::to_string(static_cast<long>(getpid()));
#endif
    return suffix;
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

namespace detail {

void
emit(LogLevel level, const std::string &tag, const std::string &msg)
{
    std::ostream &out = (level == LogLevel::Warn) ? std::cerr : std::cout;
    const std::string line =
        "[" + tag + pidSuffix() + "] " + msg + "\n";
    std::lock_guard<std::mutex> lock(emitMutex());
    if (statusLineOpen) {
        // Finish the in-place status line so the message gets its own
        // row instead of splicing into the progress display.
        std::cerr << "\n";
        statusLineOpen = false;
    }
    out << line;
}

} // namespace detail

void
statusLine(const std::string &text, bool done)
{
    if (static_cast<int>(LogLevel::Info) <
        static_cast<int>(logLevel())) {
        return; // --quiet silences progress like any Info message
    }
    std::lock_guard<std::mutex> lock(emitMutex());
    const std::string &pid = pidSuffix();
    if (pid.empty())
        std::cerr << "\r" << text;
    else // redirected: a full line per update, tagged like emit()
        std::cerr << "[status" << pid << "] " << text;
    if (done || !pid.empty()) {
        std::cerr << "\n";
        statusLineOpen = false;
    } else {
        statusLineOpen = true;
    }
    std::cerr.flush();
}

} // namespace eh
