#include "util/log.hh"

namespace eh {

namespace {

LogLevel globalLevel = LogLevel::Info;

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail {

void
emit(LogLevel level, const std::string &tag, const std::string &msg)
{
    std::ostream &out = (level == LogLevel::Warn) ? std::cerr : std::cout;
    out << "[" << tag << "] " << msg << "\n";
}

} // namespace detail

} // namespace eh
