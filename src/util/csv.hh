/**
 * @file
 * Tiny CSV writer. Every benchmark binary emits its figure/table data both
 * as a console table and as a CSV file so the series can be replotted.
 */

#ifndef EH_UTIL_CSV_HH
#define EH_UTIL_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace eh {

/**
 * Appends rows to a CSV file. Values containing commas, quotes or newlines
 * are quoted per RFC 4180.
 */
class CsvWriter
{
  public:
    /**
     * Open (truncate) the target file and emit the header row.
     * @throws FatalError if the file cannot be opened.
     */
    CsvWriter(const std::string &path,
              const std::vector<std::string> &header);

    /** Append one row of string cells; must match the header width. */
    void row(const std::vector<std::string> &cells);

    /** Append one row of numeric cells; must match the header width. */
    void rowNumeric(const std::vector<double> &cells);

    /** Number of data rows written so far. */
    std::size_t rows() const { return nRows; }

    /** Path the writer targets. */
    const std::string &path() const { return filePath; }

  private:
    static std::string escape(const std::string &cell);

    std::ofstream out;
    std::string filePath;
    std::size_t width;
    std::size_t nRows = 0;
};

} // namespace eh

#endif // EH_UTIL_CSV_HH
