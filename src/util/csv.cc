#include "util/csv.hh"

#include <sstream>

#include "util/panic.hh"

namespace eh {

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &header)
    : out(path), filePath(path), width(header.size())
{
    if (!out)
        fatalf("cannot open CSV output file: ", path);
    EH_ASSERT(width > 0, "CSV header must have at least one column");
    std::string line;
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (i)
            line += ',';
        line += escape(header[i]);
    }
    out << line << "\n";
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    EH_ASSERT(cells.size() == width, "CSV row width mismatch");
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            line += ',';
        line += escape(cells[i]);
    }
    out << line << "\n";
    ++nRows;
}

void
CsvWriter::rowNumeric(const std::vector<double> &cells)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream oss;
        oss.precision(10);
        oss << v;
        text.push_back(oss.str());
    }
    row(text);
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needsQuote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needsQuote)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace eh
