/**
 * @file
 * Streaming summary statistics used throughout the simulators and the
 * benchmark harnesses: running mean/variance (Welford), standard error of
 * the mean (the error bars in the paper's Figs 8–10), geometric mean (the
 * model-error metric in Fig 6), and fixed-width histograms.
 */

#ifndef EH_UTIL_STATS_HH
#define EH_UTIL_STATS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace eh {

/**
 * Single-pass mean/variance accumulator (Welford's algorithm).
 * Numerically stable for the long cycle-count streams the simulator emits.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStats &other);

    /** Number of observations so far. */
    std::size_t count() const { return n; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n ? m : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /**
     * Standard error of the mean (stddev / sqrt(n)) — the error-bar metric
     * used in the paper's characterization figures.
     */
    double sem() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return minValue; }

    /** Largest observation; -inf when empty. */
    double max() const { return maxValue; }

    /** Sum of all observations. */
    double sum() const { return total; }

  private:
    std::size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double minValue = 0.0; // valid only when n > 0
    double maxValue = 0.0; // valid only when n > 0
};

/**
 * Geometric mean of strictly positive values. Values of exactly zero are
 * clamped to epsilon so that a single perfect prediction does not zero the
 * aggregate error, matching common practice for error geomeans.
 */
double geomean(const std::vector<double> &values, double epsilon = 1e-12);

/**
 * Percentile via linear interpolation on a copy of the data.
 * @param q in [0, 100].
 */
double percentile(std::vector<double> values, double q);

/**
 * Pearson correlation coefficient of two equal-length series; 0 for
 * degenerate inputs (fewer than two points or zero variance).
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** Fixed-width histogram over [lo, hi) with out-of-range clamping. */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower edge.
     * @param hi Exclusive upper edge; must be > lo.
     * @param bins Number of equal-width bins; must be > 0.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one observation (clamped into the edge bins). */
    void add(double x);

    /**
     * Merge another histogram into this one (parallel reduction).
     * Commutative and associative. Both histograms must share the same
     * [lo, hi) range and bin count (asserted).
     */
    void merge(const Histogram &other);

    /**
     * Approximate quantile via linear interpolation inside the bin that
     * crosses rank q. @p q in [0, 1]. The result is bounded by the
     * containing bin's edges, so the error is at most one bin width.
     * Returns lo when empty.
     */
    double quantile(double q) const;

    /** Count in bin i. */
    std::size_t binCount(std::size_t i) const;

    /** Center of bin i. */
    double binCenter(std::size_t i) const;

    /** Number of bins. */
    std::size_t bins() const { return counts.size(); }

    /** Total observations recorded. */
    std::size_t total() const { return n; }

  private:
    double lo;
    double hi;
    std::vector<std::size_t> counts;
    std::size_t n = 0;
};

/**
 * Log2-bucketed histogram of non-negative integer observations: bucket
 * b holds values whose bit width is b (0 -> bucket 0, 1 -> 1, 2..3 ->
 * 2, 4..7 -> 3, ...). Covers the full uint64 range in 65 fixed buckets
 * with no configuration, which is what a metrics registry wants for
 * byte counts, cycle counts and retry tallies of unknown magnitude.
 * merge() is commutative, so parallel reductions are order-independent.
 */
class Log2Histogram
{
  public:
    /** Number of buckets (bit widths 0..64). */
    static constexpr std::size_t bucketCount = 65;

    /** Record one observation. */
    void add(std::uint64_t value);

    /** Merge another histogram into this one (commutative). */
    void merge(const Log2Histogram &other);

    /** Count in bucket @p b (values with bit width b). */
    std::uint64_t bucket(std::size_t b) const;

    /** Inclusive lower edge of bucket b (0, 1, 2, 4, 8, ...). */
    static std::uint64_t bucketLo(std::size_t b);

    /** Inclusive upper edge of bucket b (0, 1, 3, 7, 15, ...). */
    static std::uint64_t bucketHi(std::size_t b);

    /** Total observations. */
    std::uint64_t total() const { return n; }

    /** Sum of all observations (exact). */
    std::uint64_t sum() const { return valueSum; }

    /** Mean observation; 0 when empty. */
    double mean() const;

    /**
     * Approximate quantile, @p q in [0, 1]: linear interpolation across
     * the bucket containing rank q, so the result always lies within
     * that bucket's [lo, hi] edges. Returns 0 when empty.
     */
    double quantile(double q) const;

  private:
    std::array<std::uint64_t, bucketCount> buckets{};
    std::uint64_t n = 0;
    std::uint64_t valueSum = 0;
};

} // namespace eh

#endif // EH_UTIL_STATS_HH
