#include "util/crc.hh"

#include <array>

namespace eh {

namespace {

/**
 * Slice-by-8 lookup tables, built once at static-init time. Table 0 is
 * the classic reflected byte table; table k advances a byte through k
 * further zero bytes, so eight table lookups retire eight input bytes
 * per iteration instead of one.
 */
constexpr std::array<std::array<std::uint32_t, 256>, 8>
makeTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        tables[0][i] = c;
    }
    for (std::size_t t = 1; t < 8; ++t) {
        for (std::uint32_t i = 0; i < 256; ++i) {
            const std::uint32_t prev = tables[t - 1][i];
            tables[t][i] = tables[0][prev & 0xFFu] ^ (prev >> 8);
        }
    }
    return tables;
}

constexpr auto crcTables = makeTables();

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    while (len >= 8) {
        // Byte-wise little-endian loads keep this alignment-agnostic.
        const std::uint32_t lo =
            crc ^ (static_cast<std::uint32_t>(bytes[0]) |
                   static_cast<std::uint32_t>(bytes[1]) << 8 |
                   static_cast<std::uint32_t>(bytes[2]) << 16 |
                   static_cast<std::uint32_t>(bytes[3]) << 24);
        const std::uint32_t hi =
            static_cast<std::uint32_t>(bytes[4]) |
            static_cast<std::uint32_t>(bytes[5]) << 8 |
            static_cast<std::uint32_t>(bytes[6]) << 16 |
            static_cast<std::uint32_t>(bytes[7]) << 24;
        crc = crcTables[7][lo & 0xFFu] ^
              crcTables[6][(lo >> 8) & 0xFFu] ^
              crcTables[5][(lo >> 16) & 0xFFu] ^
              crcTables[4][lo >> 24] ^
              crcTables[3][hi & 0xFFu] ^
              crcTables[2][(hi >> 8) & 0xFFu] ^
              crcTables[1][(hi >> 16) & 0xFFu] ^
              crcTables[0][hi >> 24];
        bytes += 8;
        len -= 8;
    }
    for (std::size_t i = 0; i < len; ++i)
        crc = crcTables[0][(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
    return crc;
}

std::uint32_t
crc32(const void *data, std::size_t len)
{
    return crc32Final(crc32Update(crc32Init(), data, len));
}

} // namespace eh
