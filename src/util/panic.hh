/**
 * @file
 * Error-reporting primitives in the gem5 tradition: panic() for internal
 * invariant violations (bugs in this library) and fatal() for unrecoverable
 * user errors (bad parameters, malformed inputs), plus runMain(), the
 * unified top-level wrapper every binary uses to turn those exceptions
 * into one-line diagnostics with distinct exit codes instead of
 * std::terminate stack dumps.
 */

#ifndef EH_UTIL_PANIC_HH
#define EH_UTIL_PANIC_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace eh {

/**
 * Exception thrown by panic(): an internal invariant of the library was
 * violated. Catching this is only appropriate in tests.
 */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/**
 * Exception thrown by fatal(): the caller supplied input the library cannot
 * proceed with (e.g., a negative energy budget). Recoverable by fixing the
 * input.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * A remote peer could not be reached or the connection broke mid-stream
 * (exploration service, docs/SERVICE.md). Derives from FatalError so
 * generic fatal handling still applies, but runMain() maps it to its
 * own exit code so scripts can distinguish "the broker is down" from
 * "the parameters are wrong".
 */
class ConnectionError : public FatalError
{
  public:
    explicit ConnectionError(const std::string &msg) : FatalError(msg) {}
};

/**
 * A remote peer was reached but refused the session: protocol version
 * mismatch, wrong role, or a rejected hello (docs/SERVICE.md). Usually
 * means mixed binary versions — not a network problem and not retryable.
 */
class HandshakeError : public FatalError
{
  public:
    explicit HandshakeError(const std::string &msg) : FatalError(msg) {}
};

/**
 * A service listen socket is already owned by a live broker: a second
 * `eh_explored serve` on the same path must refuse to start instead of
 * silently stealing the path's future connections (docs/SERVICE.md,
 * docs/ROBUSTNESS.md). Distinct from ConnectionError so supervisors
 * can tell "another instance is healthy here" (do not retry) from
 * "the network broke" (retry).
 */
class SocketBusyError : public FatalError
{
  public:
    explicit SocketBusyError(const std::string &msg) : FatalError(msg)
    {
    }
};

/**
 * Report an internal library bug. Never returns.
 *
 * @param msg Human-readable description of the violated invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Report an unrecoverable user/configuration error. Never returns.
 *
 * @param msg Human-readable description of the bad input.
 */
[[noreturn]] void fatal(const std::string &msg);

namespace detail {

/** Fold arbitrary streamable arguments into one message string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/** panic() with streamable arguments: panicf("bad x=", x). */
template <typename... Args>
[[noreturn]] void
panicf(Args &&...args)
{
    panic(detail::concat(std::forward<Args>(args)...));
}

/** fatal() with streamable arguments: fatalf("bad E=", e). */
template <typename... Args>
[[noreturn]] void
fatalf(Args &&...args)
{
    fatal(detail::concat(std::forward<Args>(args)...));
}

/** Exit code for user/configuration errors (FatalError). */
constexpr int exitUserError = 1;

/** Exit code for internal bugs (PanicError, unexpected exceptions). */
constexpr int exitInternalError = 2;

/** Exit code for unreachable/broken service connections (--remote). */
constexpr int exitConnectionError = 3;

/** Exit code for rejected service handshakes (version/role mismatch). */
constexpr int exitHandshakeError = 4;

/** Exit code when a live broker already owns the listen socket. */
constexpr int exitSocketBusy = 5;

namespace detail {

/**
 * Print a one-line top-level diagnostic to stderr and return @p code.
 * @p internal selects the "internal error (bug)" prefix.
 */
int reportMainError(int code, bool internal,
                    const std::string &what) noexcept;

/**
 * Validate environment-driven configuration (EH_CHAOS) eagerly, so a
 * malformed spec fails a binary at startup with one clean diagnostic
 * instead of surfacing from whichever thread first hits an
 * instrumented site — or worse, never surfacing in a binary that hits
 * none. Throws FatalError; runMain() maps it to exitUserError.
 */
void validateStartupEnv();

} // namespace detail

/**
 * Run a program body under the unified error policy: FatalError (user
 * error) exits with exitUserError, PanicError and any other exception
 * (internal bug) with exitInternalError; the service-connectivity
 * refinements of FatalError get their own codes (exitConnectionError,
 * exitHandshakeError — docs/ROBUSTNESS.md) so campaign drivers can
 * retry a down broker but not a version mismatch. Each exits as a clean
 * one-line stderr diagnostic instead of std::terminate. Usage:
 *
 *   int main() { return eh::runMain([] { ...; return 0; }); }
 */
template <typename Fn>
int
runMain(Fn &&body) noexcept
{
    try {
        detail::validateStartupEnv();
        return body();
    } catch (const SocketBusyError &e) {
        return detail::reportMainError(exitSocketBusy, false,
                                       e.what());
    } catch (const HandshakeError &e) {
        return detail::reportMainError(exitHandshakeError, false,
                                       e.what());
    } catch (const ConnectionError &e) {
        return detail::reportMainError(exitConnectionError, false,
                                       e.what());
    } catch (const FatalError &e) {
        return detail::reportMainError(exitUserError, false, e.what());
    } catch (const PanicError &e) {
        return detail::reportMainError(exitInternalError, true, e.what());
    } catch (const std::exception &e) {
        return detail::reportMainError(exitInternalError, true, e.what());
    } catch (...) {
        return detail::reportMainError(exitInternalError, true,
                                       "unknown exception");
    }
}

} // namespace eh

/**
 * Assert a library invariant; active in all build types (unlike <cassert>)
 * because model correctness depends on these checks during benchmarking
 * runs, which are typically built optimized.
 */
#define EH_ASSERT(cond, msg)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::eh::panicf("assertion failed: ", #cond, " — ", msg, " (",      \
                         __FILE__, ":", __LINE__, ")");                      \
        }                                                                    \
    } while (false)

#endif // EH_UTIL_PANIC_HH
