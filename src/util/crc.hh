/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for checkpoint
 * integrity. Each checkpoint slot the simulator writes carries a CRC over
 * its contents so that a restore can *detect* corruption — a torn write,
 * an NVM bit error — instead of silently resuming from garbage. The
 * incremental form lets callers checksum a slot that lives in several
 * buffers (header fields, architectural state, payload) without copying.
 */

#ifndef EH_UTIL_CRC_HH
#define EH_UTIL_CRC_HH

#include <cstddef>
#include <cstdint>

namespace eh {

/**
 * One-shot CRC-32 of @p len bytes at @p data.
 * crc32("123456789") == 0xCBF43926 (the standard check value).
 */
std::uint32_t crc32(const void *data, std::size_t len);

/**
 * Incremental CRC-32: feed @p crc the result of the previous call (start
 * from crc32Init()) and finish with crc32Final(). Splitting a buffer at
 * any point yields the same digest as one crc32() over the whole.
 */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t len);

/** Initial accumulator value for crc32Update(). */
constexpr std::uint32_t crc32Init() { return 0xFFFFFFFFu; }

/** Finalize an accumulator produced by crc32Update(). */
constexpr std::uint32_t crc32Final(std::uint32_t crc)
{
    return crc ^ 0xFFFFFFFFu;
}

} // namespace eh

#endif // EH_UTIL_CRC_HH
