#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/panic.hh"

namespace eh {

Table::Table(std::vector<std::string> header) : head(std::move(header))
{
    EH_ASSERT(!head.empty(), "table must have at least one column");
}

void
Table::row(std::vector<std::string> cells)
{
    EH_ASSERT(cells.size() == head.size(), "table row width mismatch");
    body.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
Table::pct(double fraction, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision)
        << (fraction * 100.0) << "%";
    return oss.str();
}

void
Table::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        widths[c] = head[c].size();
    for (const auto &r : body)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]))
                << cells[c];
            if (c + 1 < cells.size())
                out << "  ";
        }
        out << "\n";
    };

    emit(head);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << "\n";
    for (const auto &r : body)
        emit(r);
}

} // namespace eh
