/**
 * @file
 * Minimal leveled logger. Benchmark harnesses use inform() for status lines
 * and warn() for suspicious-but-survivable conditions, mirroring gem5's
 * message taxonomy.
 */

#ifndef EH_UTIL_LOG_HH
#define EH_UTIL_LOG_HH

#include <iostream>
#include <sstream>
#include <string>

namespace eh {

/** Severity levels in increasing order of urgency. */
enum class LogLevel { Debug, Info, Warn, Quiet };

/**
 * Global log threshold; messages below this level are suppressed.
 * Defaults to Info.
 */
LogLevel logLevel();

/** Set the global log threshold. */
void setLogLevel(LogLevel level);

/**
 * In-place progress line (campaign ETA display): rewrites the current
 * stderr row with `\r`, holding the same mutex as every log emission so
 * concurrent messages never splice into it. Suppressed (like inform())
 * when the log level is above Info. @p done terminates the line.
 */
void statusLine(const std::string &text, bool done = false);

namespace detail {

void emit(LogLevel level, const std::string &tag, const std::string &msg);

template <typename... Args>
void
logAt(LogLevel level, const std::string &tag, Args &&...args)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::ostringstream oss;
    (oss << ... << args);
    emit(level, tag, oss.str());
}

} // namespace detail

/** Informational status message, visible at Info and below. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logAt(LogLevel::Info, "info", std::forward<Args>(args)...);
}

/** Diagnostic message, visible only at Debug level. */
template <typename... Args>
void
debug(Args &&...args)
{
    detail::logAt(LogLevel::Debug, "debug", std::forward<Args>(args)...);
}

/** Warning: something looks wrong but execution can continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logAt(LogLevel::Warn, "warn", std::forward<Args>(args)...);
}

} // namespace eh

#endif // EH_UTIL_LOG_HH
