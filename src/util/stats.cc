#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/panic.hh"

namespace eh {

void
RunningStats::add(double x)
{
    if (n == 0) {
        minValue = x;
        maxValue = x;
    } else {
        minValue = std::min(minValue, x);
        maxValue = std::max(maxValue, x);
    }
    ++n;
    total += x;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.m - m;
    const double combined = na + nb;
    m += delta * nb / combined;
    m2 += other.m2 + delta * delta * na * nb / combined;
    n += other.n;
    total += other.total;
    minValue = std::min(minValue, other.minValue);
    maxValue = std::max(maxValue, other.maxValue);
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::sem() const
{
    if (n == 0)
        return 0.0;
    return stddev() / std::sqrt(static_cast<double>(n));
}

double
geomean(const std::vector<double> &values, double epsilon)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        EH_ASSERT(v >= 0.0, "geomean requires non-negative values");
        logSum += std::log(std::max(v, epsilon));
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
percentile(std::vector<double> values, double q)
{
    EH_ASSERT(q >= 0.0 && q <= 100.0, "percentile q out of range");
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    const double rank = q / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    EH_ASSERT(xs.size() == ys.size(), "pearson requires equal lengths");
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += xs[i];
        my += ys[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins_)
    : lo(lo_), hi(hi_), counts(bins_, 0)
{
    EH_ASSERT(hi > lo, "histogram needs hi > lo");
    EH_ASSERT(bins_ > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    const double width = (hi - lo) / static_cast<double>(counts.size());
    auto idx = static_cast<long>(std::floor((x - lo) / width));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts.size()) - 1);
    ++counts[static_cast<std::size_t>(idx)];
    ++n;
}

void
Histogram::merge(const Histogram &other)
{
    EH_ASSERT(lo == other.lo && hi == other.hi &&
                  counts.size() == other.counts.size(),
              "histogram merge requires identical geometry");
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    n += other.n;
}

double
Histogram::quantile(double q) const
{
    EH_ASSERT(q >= 0.0 && q <= 1.0, "quantile q out of range");
    if (n == 0)
        return lo;
    const double width = (hi - lo) / static_cast<double>(counts.size());
    // Rank of the requested quantile among n observations, 0-based.
    const double rank = q * static_cast<double>(n - 1);
    double below = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const auto c = static_cast<double>(counts[i]);
        if (c > 0.0 && below + c > rank) {
            // Interpolate within this bin by the fraction of its
            // occupants below the rank.
            const double frac = (rank - below) / c;
            return lo + (static_cast<double>(i) + frac) * width;
        }
        below += c;
    }
    return hi; // rank beyond the last occupied bin (q == 1 edge)
}

std::size_t
Histogram::binCount(std::size_t i) const
{
    EH_ASSERT(i < counts.size(), "histogram bin index out of range");
    return counts[i];
}

double
Histogram::binCenter(std::size_t i) const
{
    EH_ASSERT(i < counts.size(), "histogram bin index out of range");
    const double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + (static_cast<double>(i) + 0.5) * width;
}

namespace {

/** Bit width of v: 0 for 0, else position of the highest set bit + 1. */
std::size_t
bitWidth(std::uint64_t v)
{
    std::size_t w = 0;
    while (v != 0) {
        v >>= 1;
        ++w;
    }
    return w;
}

} // namespace

void
Log2Histogram::add(std::uint64_t value)
{
    ++buckets[bitWidth(value)];
    ++n;
    valueSum += value;
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    for (std::size_t b = 0; b < bucketCount; ++b)
        buckets[b] += other.buckets[b];
    n += other.n;
    valueSum += other.valueSum;
}

std::uint64_t
Log2Histogram::bucket(std::size_t b) const
{
    EH_ASSERT(b < bucketCount, "log2 bucket index out of range");
    return buckets[b];
}

std::uint64_t
Log2Histogram::bucketLo(std::size_t b)
{
    EH_ASSERT(b < bucketCount, "log2 bucket index out of range");
    if (b == 0)
        return 0;
    return 1ull << (b - 1);
}

std::uint64_t
Log2Histogram::bucketHi(std::size_t b)
{
    EH_ASSERT(b < bucketCount, "log2 bucket index out of range");
    if (b == 0)
        return 0;
    if (b == 64)
        return ~0ull;
    return (1ull << b) - 1;
}

double
Log2Histogram::mean() const
{
    if (n == 0)
        return 0.0;
    return static_cast<double>(valueSum) / static_cast<double>(n);
}

double
Log2Histogram::quantile(double q) const
{
    EH_ASSERT(q >= 0.0 && q <= 1.0, "quantile q out of range");
    if (n == 0)
        return 0.0;
    const double rank = q * static_cast<double>(n - 1);
    double below = 0.0;
    for (std::size_t b = 0; b < bucketCount; ++b) {
        const auto c = static_cast<double>(buckets[b]);
        if (c > 0.0 && below + c > rank) {
            const double frac = (rank - below) / c;
            const auto lo = static_cast<double>(bucketLo(b));
            const auto hi = static_cast<double>(bucketHi(b));
            return lo + (hi - lo) * frac;
        }
        below += c;
    }
    return 0.0; // unreachable: ranks are covered by the buckets
}

} // namespace eh
