/**
 * @file
 * Deterministic pseudo-random number generation (splitmix64 +
 * xoshiro256**). Every stochastic component in the repository draws from an
 * explicitly seeded Rng so that simulations, workload input generators and
 * voltage-trace synthesis are exactly reproducible run-to-run.
 */

#ifndef EH_UTIL_RANDOM_HH
#define EH_UTIL_RANDOM_HH

#include <cstdint>

namespace eh {

/**
 * Small, fast, reproducible PRNG (xoshiro256** seeded via splitmix64).
 * Not cryptographic; statistical quality is more than adequate for workload
 * synthesis and trace jitter.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) — bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard normal draw (Box–Muller, one value per call). */
    double nextGaussian();

    /** Bernoulli draw with success probability prob. */
    bool nextBool(double prob = 0.5);

    /**
     * Fork an independent child stream; children of the same parent with
     * distinct indices produce uncorrelated streams.
     */
    Rng fork(std::uint64_t index) const;

    /**
     * Derive an independent sub-stream from this generator's seed and a
     * 64-bit stream identifier (splitmix-style double mixing). Unlike
     * fork(), split() is designed for sparse, adversarial identifiers —
     * e.g. content hashes of exploration jobs — where neighbouring ids
     * may differ in a single bit; the two mixing rounds guarantee the
     * derived seeds avalanche. Equal (seed, stream) pairs always yield
     * the same stream, independent of how many draws this generator has
     * already made.
     */
    Rng split(std::uint64_t stream) const;

  private:
    std::uint64_t state[4];
    std::uint64_t seedValue;
};

} // namespace eh

#endif // EH_UTIL_RANDOM_HH
