#include "util/random.hh"

#include <cmath>

#include "util/panic.hh"

namespace eh {

namespace {

/** splitmix64 step, used to expand a single seed into xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : seedValue(seed)
{
    std::uint64_t x = seed;
    for (auto &s : state)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    EH_ASSERT(bound > 0, "nextBelow bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return draw % bound;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    EH_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 high bits → uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    double u1 = nextDouble();
    while (u1 <= 0.0)
        u1 = nextDouble();
    const double u2 = nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

bool
Rng::nextBool(double prob)
{
    return nextDouble() < prob;
}

Rng
Rng::fork(std::uint64_t index) const
{
    std::uint64_t x = seedValue ^ (0xa0761d6478bd642full + index);
    // One extra mixing round decorrelates adjacent child indices.
    return Rng(splitmix64(x));
}

Rng
Rng::split(std::uint64_t stream) const
{
    // Mix seed and stream through two independent splitmix rounds so
    // that single-bit differences in either input avalanche across the
    // whole derived seed (fork()'s single round leaves the XOR of two
    // adjacent hashes partially visible).
    std::uint64_t x = seedValue;
    std::uint64_t derived = splitmix64(x);
    x = derived ^ stream;
    derived = splitmix64(x);
    return Rng(derived);
}

} // namespace eh
