#!/usr/bin/env bash
# Performance gate for the block execution engine (docs/PERFORMANCE.md):
# runs the BM_Engine scalar/block benchmark pairs (median of 5
# repetitions), computes the per-cell block-over-scalar speedup, and
# writes the full table plus the campaign-level numbers to
# results/BENCH_perf.json. Fails when
#   - the median per-cell speedup drops below EH_PERF_MIN_SPEEDUP
#     (default 1.5), i.e. the fast path stopped being fast, or
#   - the scalar engine's own median cell time regressed more than
#     EH_PERF_SCALAR_TOLERANCE percent (default 5) against the
#     committed results/BENCH_perf.json, i.e. the shared protocol
#     picked up overhead. The scalar check is skipped when no prior
#     file exists or EH_PERF_SKIP_SCALAR_CHECK=1 (CI machines are not
#     comparable to the machine that committed the baseline).
#
# Usage: scripts/perf_gate.sh [build-dir] [out-json]
set -euo pipefail

build="${1:-build}"
out="${2:-results/BENCH_perf.json}"
min_speedup="${EH_PERF_MIN_SPEEDUP:-1.5}"
scalar_tolerance="${EH_PERF_SCALAR_TOLERANCE:-5}"
skip_scalar="${EH_PERF_SKIP_SCALAR_CHECK:-0}"
filter="${EH_PERF_FILTER:-BM_Engine}"
bench="$build/bench/perf_model_eval"

if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake --build $build --target perf_model_eval)" >&2
    exit 2
fi

prior=""
if [ -f "$out" ] && [ "$skip_scalar" != "1" ]; then
    prior=$(mktemp)
    cp "$out" "$prior"
fi

raw=$(mktemp)
trap 'rm -f "$raw" ${prior:+"$prior"}' EXIT
"$bench" --benchmark_filter="$filter" \
         --benchmark_repetitions=5 \
         --benchmark_report_aggregates_only=true \
         --benchmark_format=json >"$raw" 2>/dev/null

python3 - "$raw" "$out" "$min_speedup" "$scalar_tolerance" "${prior:-}" <<'PY'
import datetime
import json
import os
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
min_speedup, scalar_tol = float(sys.argv[3]), float(sys.argv[4])
prior_path = sys.argv[5] if len(sys.argv) > 5 else ""

with open(raw_path) as f:
    doc = json.load(f)

# Medians of cpu_time (ms): wall time is noisy on loaded CI machines,
# and both engines burn pure CPU.
medians = {}
for b in doc.get("benchmarks", []):
    if b.get("aggregate_name") != "median":
        continue
    medians[b["run_name"]] = b["cpu_time"]

cells = {}
campaign = {}
for name, t in sorted(medians.items()):
    #  BM_Engine/<workload>_<policy>_<engine>  or  BM_EngineCampaign/<engine>
    base, _, variant = name.partition("/")
    if base == "BM_EngineCampaign":
        campaign[variant] = t
        continue
    if base != "BM_Engine":
        continue
    cell, _, engine = variant.rpartition("_")
    cells.setdefault(cell, {})[engine] = t

rows = []
for cell, times in sorted(cells.items()):
    if "scalar" not in times or "block" not in times:
        sys.exit(f"error: cell {cell} is missing an engine variant")
    rows.append({
        "cell": cell,
        "scalar_ms": round(times["scalar"], 4),
        "block_ms": round(times["block"], 4),
        "speedup": round(times["scalar"] / times["block"], 3),
    })
if not rows:
    sys.exit("error: no BM_Engine scalar/block pairs in benchmark output")

speedups = sorted(r["speedup"] for r in rows)
n = len(speedups)
median_speedup = (speedups[n // 2] if n % 2
                  else (speedups[n // 2 - 1] + speedups[n // 2]) / 2.0)
scalar_times = sorted(r["scalar_ms"] for r in rows)
median_scalar = (scalar_times[n // 2] if n % 2
                 else (scalar_times[n // 2 - 1] + scalar_times[n // 2]) / 2.0)

record = {
    "date": datetime.date.today().isoformat(),
    "benchmark": "perf_model_eval / BM_Engine (median of 5, cpu_time ms)",
    "median_speedup": round(median_speedup, 3),
    "min_speedup_required": min_speedup,
    "median_scalar_ms": round(median_scalar, 4),
    "cells": rows,
    "campaign": {k: round(v, 3) for k, v in sorted(campaign.items())},
}
if "scalar" in campaign and "block" in campaign:
    record["campaign_speedup"] = round(
        campaign["scalar"] / campaign["block"], 3)

prior_scalar = None
if prior_path:
    try:
        with open(prior_path) as f:
            prior_scalar = json.load(f).get("median_scalar_ms")
    except (OSError, ValueError):
        prior_scalar = None

os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
with open(out_path, "w") as f:
    json.dump(record, f, indent=2)
    f.write("\n")

for r in rows:
    print(f"  {r['cell']:24s} scalar {r['scalar_ms']:9.3f} ms   "
          f"block {r['block_ms']:9.3f} ms   x{r['speedup']:.2f}")
if "campaign_speedup" in record:
    print(f"  {'campaign':24s} scalar {campaign['scalar']:9.3f} ms   "
          f"block {campaign['block']:9.3f} ms   "
          f"x{record['campaign_speedup']:.2f}")
print(f"median speedup x{median_speedup:.3f} "
      f"(floor x{min_speedup:.2f}) -> {out_path}")

failed = False
if median_speedup < min_speedup:
    print(f"FAIL: median block speedup x{median_speedup:.3f} below "
          f"the x{min_speedup:.2f} floor")
    failed = True
if prior_scalar:
    drift_pct = 100.0 * (median_scalar - prior_scalar) / prior_scalar
    print(f"scalar median {median_scalar:.3f} ms vs committed "
          f"{prior_scalar:.3f} ms ({drift_pct:+.2f}%)")
    if drift_pct > scalar_tol:
        print(f"FAIL: scalar engine regressed {drift_pct:.2f}% "
              f"(> {scalar_tol:.1f}%)")
        failed = True
if failed:
    sys.exit(1)
print("OK: block engine holds its speedup floor")
PY
