# Gnuplot script regenerating the paper-style figures from the CSVs that
# the bench binaries write into ./results. Run the benches first, then:
#
#   gnuplot -e "outdir='results'" scripts/plot_results.gp
#
# PNG files land next to the CSVs.

if (!exists("outdir")) outdir = "results"
set datafile separator ","
set terminal pngcairo size 900,600 font "sans,11"
set key outside right
set grid

# --- Figure 2: progress vs tau_B per backup cost --------------------------
set output outdir . "/fig02_multibackup_sweep.png"
set title "Figure 2: progress vs tau_B (multi-backup)"
set logscale x
set xlabel "tau_B (cycles)"
set ylabel "forward progress p"
plot for [col=2:7] outdir . "/fig02_multibackup_sweep.csv" \
     using 1:col with linespoints title columnheader(col)

# --- Figure 3: zero architectural state -----------------------------------
set output outdir . "/fig03_zero_arch_state.png"
set title "Figure 3: progress vs tau_B, A_B = 0 (no sweet spot)"
plot for [col=2:7] outdir . "/fig03_zero_arch_state.csv" \
     using 1:col with linespoints title columnheader(col)

# --- Figure 4: dead-cycle bounds -------------------------------------------
set output outdir . "/fig04_dead_cycle_bounds.png"
set title "Figure 4: best/average/worst-case dead cycles"
plot outdir . "/fig04_dead_cycle_bounds.csv" using 1:2 \
         with lines lw 2 title "best (tau_D = 0)", \
     '' using 1:3 with lines lw 2 title "average (tau_D = tau_B/2)", \
     '' using 1:4 with lines lw 2 title "worst (tau_D = tau_B)"

# --- Figure 5: hardware-validation sweep -----------------------------------
set output outdir . "/fig05_hw_validation_sweep.png"
set title "Figure 5: measured progress inside the EH bounds"
set xlabel "tau_B (ms, hardware-equivalent)"
plot outdir . "/fig05_hw_validation_sweep.csv" \
         using 2:6 with lines lt 0 title "model lower bound", \
     '' using 2:7 with lines lt 0 lw 2 title "model upper bound", \
     '' using 2:3 with points pt 7 title "measured"

# --- Figure 11: bit-precision benefit --------------------------------------
set output outdir . "/fig11_bit_precision.png"
set title "Figure 11: |dp/dalpha_B| vs tau_B (susan on Clank)"
set xlabel "tau_B (cycles)"
set ylabel "|dp/dalpha_B|"
plot for [col=2:6] outdir . "/fig11_bit_precision.csv" \
     using 1:col with lines lw 2 title columnheader(col)

# --- Circular-buffer case study --------------------------------------------
set output outdir . "/case_circular_buffer.png"
set title "Section VI-B: ring size vs tau_B and progress"
set xlabel "ring slots N"
set ylabel "measured tau_B (cycles)"
set y2label "forward progress"
set y2tics
set y2range [0:1]
plot outdir . "/case_circular_buffer.csv" \
         using 1:3 with linespoints title "measured tau_B", \
     '' using 1:2 with lines lt 0 title "(N-n+1) tau_store", \
     '' using 1:4 axes x1y2 with linespoints lw 2 \
         title "progress (right axis)"

unset y2tics
unset y2label
unset logscale x

# --- Break-even table --------------------------------------------------------
set output outdir . "/tab_breakeven.png"
set title "Equation 11: dp/de_B vs dp/de_R over tau_B"
set logscale x
set xlabel "tau_B (cycles)"
set ylabel "marginal progress per joule"
plot outdir . "/tab_breakeven.csv" \
         using 1:2 with lines lw 2 title "dp/de_B", \
     '' using 1:3 with lines lw 2 title "dp/de_R"
