#!/usr/bin/env bash
# End-to-end smoke of the sharded exploration service
# (docs/SERVICE.md): drives the real binaries — an eh_explored broker
# with forked workers and eh_explore campaigns in --remote mode —
# through the guarantees the service makes, and fails loudly when any
# is broken:
#
#   1. a campaign run through a broker + 2 workers produces a CSV
#      byte-identical to the same campaign run in-process;
#   2. a warm re-run against the broker's store executes nothing;
#   3. kill -9 of a worker mid-campaign: the lease is re-dispatched,
#      the campaign completes, and the CSV is still byte-identical —
#      no lost and no duplicated records;
#   4. two concurrent campaigns share one cache: every cell executes
#      at most once, the twin is served from the in-flight table or
#      the store (counters prove the reuse);
#   5. drain shuts the broker down cleanly;
#   6. eh_cachectl stat --json agrees with the number of cells.
#
# Usage: scripts/service_smoke.sh [build-dir]
set -euo pipefail

build="${1:-build}"
explore="$build/tools/eh_explore"
explored="$build/tools/eh_explored"
cachectl="$build/tools/eh_cachectl"

for bin in "$explore" "$explored" "$cachectl"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin not built (cmake --build $build --target eh_explore eh_explored eh_cachectl)" >&2
        exit 2
    fi
done

work=$(mktemp -d -t eh_service_smoke.XXXXXX)
broker_pid=""
cleanup() {
    if [ -n "$broker_pid" ]; then
        kill -9 "$broker_pid" $(pgrep -P "$broker_pid" 2>/dev/null) \
            2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }
note() { echo "--- $*"; }

grid=(--grid fault --cells 20)   # 600 cells, a few seconds of work
sock="$work/svc.sock"

counter() { # counter NAME < stats.json
    grep -o "\"$1\":[0-9]*" "$work/stats.json" | cut -d: -f2
}
snapshot_stats() {
    "$explored" ping --socket "$sock" > "$work/stats.json"
}

note "in-process reference run"
"$explore" campaign "${grid[@]}" --cache-dir "$work/ref_cache" \
    --csv "$work/ref.csv" > /dev/null 2>&1

note "1/2: broker + 2 workers, cold then warm"
"$explored" serve --socket "$sock" --cache-dir "$work/svc_cache" \
    --workers 2 > "$work/broker.log" 2>&1 &
broker_pid=$!
"$explore" campaign "${grid[@]}" --remote "$sock" \
    --csv "$work/svc_cold.csv" > /dev/null 2>&1
cmp "$work/ref.csv" "$work/svc_cold.csv" \
    || fail "cold service CSV differs from the in-process reference"
"$explore" campaign "${grid[@]}" --remote "$sock" \
    --csv "$work/svc_warm.csv" > /dev/null 2>&1
cmp "$work/ref.csv" "$work/svc_warm.csv" \
    || fail "warm service CSV differs from the in-process reference"
snapshot_stats
[ "$(counter store_hits)" -ge 600 ] \
    || fail "warm re-run did not hit the store (counters: $(cat "$work/stats.json"))"

note "3: kill -9 one worker mid-campaign, fresh store"
"$explored" drain --socket "$sock" > /dev/null 2>&1
wait "$broker_pid" 2>/dev/null || true
"$explored" serve --socket "$sock" --cache-dir "$work/kill_cache" \
    --workers 2 > "$work/broker_kill.log" 2>&1 &
broker_pid=$!
sleep 0.5
victim=$(pgrep -P "$broker_pid" | head -1)
[ -n "$victim" ] || fail "no forked worker to kill"
( sleep 0.6; kill -9 "$victim" 2>/dev/null ) &
"$explore" campaign "${grid[@]}" --remote "$sock" \
    --csv "$work/svc_kill.csv" > /dev/null 2>&1
wait %2 2>/dev/null || true
cmp "$work/ref.csv" "$work/svc_kill.csv" \
    || fail "CSV diverged after a worker was SIGKILLed mid-campaign"
snapshot_stats
[ "$(counter results)" -eq 600 ] \
    || fail "lost or duplicated records after the kill (results=$(counter results))"
# The kill is timing-dependent: if it landed while the worker held a
# lease, the crash/redispatch counters must agree.
if [ "$(counter worker_crashes)" -gt 0 ]; then
    [ "$(counter redispatches)" -ge 1 ] \
        || fail "worker crash recorded but no lease re-dispatched"
    echo "    (kill landed mid-lease: $(counter redispatches) re-dispatch(es))"
else
    echo "    (worker was idle at kill time; completion still verified)"
fi

note "4: two concurrent campaigns share one cache"
"$explored" drain --socket "$sock" > /dev/null 2>&1
wait "$broker_pid" 2>/dev/null || true
"$explored" serve --socket "$sock" --cache-dir "$work/share_cache" \
    --workers 2 > "$work/broker_share.log" 2>&1 &
broker_pid=$!
"$explore" campaign "${grid[@]}" --remote "$sock" \
    --csv "$work/svc_a.csv" > /dev/null 2>&1 &
client_a=$!
"$explore" campaign "${grid[@]}" --remote "$sock" \
    --csv "$work/svc_b.csv" > /dev/null 2>&1 &
client_b=$!
wait "$client_a" "$client_b"
cmp "$work/ref.csv" "$work/svc_a.csv" \
    || fail "concurrent campaign A diverged"
cmp "$work/ref.csv" "$work/svc_b.csv" \
    || fail "concurrent campaign B diverged"
snapshot_stats
[ "$(counter jobs_submitted)" -eq 600 ] \
    || fail "cells executed more than once across twin campaigns (jobs_submitted=$(counter jobs_submitted))"
reused=$(( $(counter inflight_hits) + $(counter store_hits) ))
[ "$reused" -eq 600 ] \
    || fail "twin campaign not served by reuse (inflight+store hits=$reused)"
echo "    (reuse: $(counter inflight_hits) in-flight joins, $(counter store_hits) store hits)"

note "5: drain shuts the broker down cleanly"
"$explored" drain --socket "$sock" > /dev/null 2>&1
for _ in $(seq 50); do
    kill -0 "$broker_pid" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$broker_pid" 2>/dev/null \
    && fail "broker still alive after drain"
broker_pid=""

note "6: eh_cachectl stat --json agrees with the released store"
# Must run after the drain: the broker is the store's single writer
# and holds its lock for as long as it serves (docs/STORAGE.md).
"$cachectl" stat --dir "$work/share_cache" --name fault --json 1 \
    > "$work/stat.json"
grep -q '"live_records":600' "$work/stat.json" \
    || fail "stat --json disagrees: $(cat "$work/stat.json")"

echo "service smoke: all checks passed"
