#!/usr/bin/env bash
# Deterministic chaos sweep of the exploration service
# (docs/ROBUSTNESS.md): drives the real binaries through seeded fault
# injection (EH_CHAOS, src/util/chaos.hh) and proves the one invariant
# that matters — whatever dies, the campaign CSV stays byte-identical
# to an in-process oracle run:
#
#   1. crash sweep: for every broker/worker/shared site named by
#      `eh_explored chaos-sites`, a `serve --supervise` tree is armed
#      with a one-shot crash at that site (EH_CHAOS_FUSE); the armed
#      process dies with exit 86 mid-protocol, the supervisor respawns
#      it disarmed, the client rides the outage out via session
#      resume, and the CSV matches the oracle;
#   2. client crash sweep: the same for client-side sites — the
#      campaign process itself dies at the site, and a rerun (fuse
#      burnt) completes from the durable store, byte-identical;
#   3. broker kill -9 + restart mid-campaign: no injection, a real
#      SIGKILL of the serve process; a fresh serve on the same socket
#      and cache picks the campaign up where the store left off;
#   4. ENOSPC at the store append path surfaces as a clean StoreError
#      naming the segment and the bytes it wanted — never a crash or
#      a silent truncation;
#   5. a live broker's socket can never be stolen: a second serve on
#      the same path exits 5 without touching the socket;
#   6. a randomized short-read/short-write + spurious-EINTR noise run
#      (seed echoed for replay) still converges byte-identically.
#
# On failure the scratch tree is preserved under
# ${CHAOS_EVIDENCE_DIR:-./chaos-evidence} for CI artifact upload.
#
# Usage: scripts/chaos_harness.sh [build-dir]
set -euo pipefail

build="${1:-build}"
explore="$build/tools/eh_explore"
explored="$build/tools/eh_explored"

for bin in "$explore" "$explored"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin not built (cmake --build $build --target eh_explore eh_explored)" >&2
        exit 2
    fi
done

work=$(mktemp -d -t eh_chaos_harness.XXXXXX)
serve_pid=""
keep_evidence=0
cleanup() {
    if [ -n "$serve_pid" ]; then
        kill -9 "$serve_pid" $(pgrep -P "$serve_pid" 2>/dev/null) \
            2>/dev/null || true
    fi
    # Any eh_explored orphaned by a kill -9 of its parent.
    pkill -9 -f "eh_explored (serve|worker) --socket $work" \
        2>/dev/null || true
    if [ "$keep_evidence" -ne 0 ]; then
        evidence="${CHAOS_EVIDENCE_DIR:-$PWD/chaos-evidence}"
        mkdir -p "$evidence"
        cp -r "$work" "$evidence/" 2>/dev/null || true
        echo "evidence preserved under $evidence" >&2
    fi
    rm -rf "$work"
}
trap cleanup EXIT

fail() { keep_evidence=1; echo "FAIL: $*" >&2; exit 1; }
note() { echo "--- $*"; }

grid=(--grid fault --cells 8)
sock="$work/svc.sock"
chaos_exit=86 # chaos::chaosExitCode

# Start a supervised serve tree; $1 = cache dir, $2 = EH_CHAOS spec
# ('' = unarmed), $3 = log name. The fuse lives next to the log so a
# crashed child's respawn comes up disarmed.
start_serve() {
    local cache="$1" spec="$2" log="$3"
    if [ -n "$spec" ]; then
        env EH_CHAOS="$spec" EH_CHAOS_FUSE="$work/$log.fuse" \
            "$explored" serve --socket "$sock" --cache-dir "$cache" \
            --workers 2 --supervise 1 --respawn-backoff-ms 20 \
            > "$work/$log.log" 2>&1 &
    else
        "$explored" serve --socket "$sock" --cache-dir "$cache" \
            --workers 2 > "$work/$log.log" 2>&1 &
    fi
    serve_pid=$!
    for _ in $(seq 100); do
        "$explored" ping --socket "$sock" >/dev/null 2>&1 && return 0
        kill -0 "$serve_pid" 2>/dev/null \
            || fail "serve ($log) died before listening: $(tail -5 "$work/$log.log")"
        sleep 0.1
    done
    fail "serve ($log) never started listening"
}

stop_serve() {
    [ -n "$serve_pid" ] || return 0
    "$explored" drain --socket "$sock" >/dev/null 2>&1 || true
    for _ in $(seq 50); do
        kill -0 "$serve_pid" 2>/dev/null || break
        sleep 0.1
    done
    kill -9 "$serve_pid" $(pgrep -P "$serve_pid" 2>/dev/null) \
        2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    serve_pid=""
}

note "in-process oracle run"
"$explore" campaign "${grid[@]}" --cache-dir "$work/ref_cache" \
    --csv "$work/ref.csv" > /dev/null 2>&1

sites=$("$explored" chaos-sites)
[ -n "$sites" ] || fail "chaos-sites printed nothing"

note "1: crash sweep over the serve-side sites"
for site in $sites; do
    case "$site" in
    client.*) continue ;; # swept separately below
    esac
    # Most sites fire per cell or per frame: hit 3 lands mid-batch.
    # broker.submit.ack fires once per submission, so only hit 1 can.
    hit=3
    [ "$site" = "broker.submit.ack" ] && hit=1
    start_serve "$work/crash_${site}_cache" "1:crash=${site}@${hit}" \
        "crash_$site"
    "$explore" campaign "${grid[@]}" --remote "$sock" \
        --remote-retries 20 --csv "$work/crash_$site.csv" \
        > "$work/crash_${site}_client.log" 2>&1 \
        || fail "campaign died with crash=$site armed serve-side: $(tail -5 "$work/crash_${site}_client.log")"
    cmp "$work/ref.csv" "$work/crash_$site.csv" \
        || fail "CSV diverged with crash=$site armed serve-side"
    if [ -e "$work/crash_$site.fuse" ]; then
        echo "    $site: crash fired, respawned, byte-identical"
    else
        echo "    $site: never reached hit $hit (vacuous), byte-identical"
    fi
    stop_serve
done

note "2: crash sweep over the client-side sites"
for site in $sites; do
    case "$site" in
    client.*) ;;
    *) continue ;;
    esac
    start_serve "$work/ccrash_${site}_cache" "" "ccrash_$site"
    rc=0
    if [ "$site" = "client.resume" ]; then
        # The resume path only runs during an outage: kill -9 the
        # serve mid-batch and restart it so the armed client actually
        # reaches the site while reconnecting.
        env EH_CHAOS="1:crash=${site}@1" \
            EH_CHAOS_FUSE="$work/ccrash_$site.fuse" \
            "$explore" campaign "${grid[@]}" --remote "$sock" \
            --remote-retries 30 --csv "$work/ccrash_$site.csv" \
            > "$work/ccrash_${site}_client.log" 2>&1 &
        ccrash_pid=$!
        sleep 0.4
        kill -9 "$serve_pid" 2>/dev/null || true
        wait "$serve_pid" 2>/dev/null || true
        serve_pid=""
        start_serve "$work/ccrash_${site}_cache" "" "ccrash_${site}_b"
        wait "$ccrash_pid" || rc=$?
    else
        env EH_CHAOS="1:crash=${site}@1" \
            EH_CHAOS_FUSE="$work/ccrash_$site.fuse" \
            "$explore" campaign "${grid[@]}" --remote "$sock" \
            --csv "$work/ccrash_$site.csv" \
            > "$work/ccrash_${site}_client.log" 2>&1 || rc=$?
    fi
    if [ "$rc" -eq "$chaos_exit" ]; then
        # The client died at the site; the rerun starts with the fuse
        # burnt (disarmed) and completes from the durable store.
        env EH_CHAOS="1:crash=${site}@1" \
            EH_CHAOS_FUSE="$work/ccrash_$site.fuse" \
            "$explore" campaign "${grid[@]}" --remote "$sock" \
            --csv "$work/ccrash_$site.csv" \
            > "$work/ccrash_${site}_rerun.log" 2>&1 \
            || fail "rerun after client crash=$site failed: $(tail -5 "$work/ccrash_${site}_rerun.log")"
        echo "    $site: client died (exit $chaos_exit), rerun completed"
    elif [ "$rc" -eq 0 ]; then
        echo "    $site: never fired (vacuous), campaign completed"
    else
        fail "client exited $rc (not 0 or $chaos_exit) with crash=$site"
    fi
    cmp "$work/ref.csv" "$work/ccrash_$site.csv" \
        || fail "CSV diverged after client crash=$site"
    stop_serve
done

note "3: broker kill -9 + restart mid-campaign"
start_serve "$work/kill9_cache" "" "kill9_a"
"$explore" campaign "${grid[@]}" --remote "$sock" \
    --remote-retries 30 --csv "$work/kill9.csv" \
    > "$work/kill9_client.log" 2>&1 &
client_pid=$!
sleep 0.4
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
# The old serve's workers are orphaned mid-reconnect; the fresh serve
# reclaims the now-stale socket and its own workers drain the batch.
start_serve "$work/kill9_cache" "" "kill9_b"
wait "$client_pid" \
    || fail "campaign did not survive the broker kill -9: $(tail -5 "$work/kill9_client.log")"
cmp "$work/ref.csv" "$work/kill9.csv" \
    || fail "CSV diverged after broker kill -9 + restart"
if grep -q "rode out" "$work/kill9_client.log"; then
    echo "    client resumed mid-batch: $(grep 'rode out' "$work/kill9_client.log" | tail -1)"
else
    echo "    (kill landed outside the batch window; identity still verified)"
fi
stop_serve

note "4: ENOSPC at store.append is a clean error, not a crash"
rc=0
env EH_CHAOS="1:enospc=store.append@3" \
    "$explore" campaign "${grid[@]}" \
    --cache-dir "$work/enospc_cache" --csv "$work/enospc.csv" \
    > "$work/enospc.log" 2>&1 || rc=$?
[ "$rc" -ne 0 ] || fail "campaign ignored an injected ENOSPC"
[ "$rc" -ne "$chaos_exit" ] && [ "$rc" -lt 128 ] \
    || fail "ENOSPC crashed the campaign (exit $rc) instead of a clean error"
grep -qi "bytes" "$work/enospc.log" \
    || fail "ENOSPC error does not name the bytes it needed: $(tail -5 "$work/enospc.log")"
echo "    exit $rc: $(grep -i 'no space\|enospc\|store' "$work/enospc.log" | head -1)"

note "5: a live broker's socket cannot be stolen"
start_serve "$work/steal_cache" "" "steal_victim"
rc=0
"$explored" serve --socket "$sock" --cache-dir "$work/steal2_cache" \
    > "$work/steal_thief.log" 2>&1 || rc=$?
[ "$rc" -eq 5 ] \
    || fail "second serve on a live socket exited $rc, want 5: $(tail -5 "$work/steal_thief.log")"
"$explored" ping --socket "$sock" > /dev/null 2>&1 \
    || fail "victim broker lost its socket to the refused thief"
rc=0
"$explored" serve --socket "$sock" --supervise 1 \
    --cache-dir "$work/steal3_cache" \
    > "$work/steal_thief_sup.log" 2>&1 || rc=$?
[ "$rc" -eq 5 ] \
    || fail "supervised serve on a live socket exited $rc, want 5"
stop_serve

note "6: randomized short-I/O + EINTR noise run"
noise_seed="${CHAOS_NOISE_SEED:-$RANDOM$RANDOM}"
echo "    noise seed: $noise_seed (replay: CHAOS_NOISE_SEED=$noise_seed)"
env EH_CHAOS="$noise_seed:shortio=200,eintr=150" \
    "$explored" serve --socket "$sock" \
    --cache-dir "$work/noise_cache" --workers 2 \
    > "$work/noise_serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 100); do
    "$explored" ping --socket "$sock" >/dev/null 2>&1 && break
    sleep 0.1
done
env EH_CHAOS="$noise_seed:shortio=200,eintr=150" \
    "$explore" campaign "${grid[@]}" --remote "$sock" \
    --csv "$work/noise.csv" > "$work/noise_client.log" 2>&1 \
    || fail "campaign failed under I/O noise (seed $noise_seed): $(tail -5 "$work/noise_client.log")"
cmp "$work/ref.csv" "$work/noise.csv" \
    || fail "CSV diverged under I/O noise (seed $noise_seed)"
stop_serve

echo "chaos harness: all checks passed"
