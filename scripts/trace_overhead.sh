#!/usr/bin/env bash
# Gate on the observability subsystem's disabled cost (docs/OBSERVABILITY.md):
# runs the perf_model_eval microbenchmarks and asserts that a full simulated
# crc run with the trace sink constructed-but-disabled (BM_SimulatedCrcRunSinkIdle)
# stays within EH_TRACE_OVERHEAD_TOLERANCE percent (default 5) of the
# never-enabled baseline (BM_SimulatedCrcRun). Writes the datapoint —
# including the fully-traced cost — to results/BENCH_obs.json.
#
# Usage: scripts/trace_overhead.sh [build-dir] [out-json]
set -euo pipefail

build="${1:-build}"
out="${2:-results/BENCH_obs.json}"
tolerance="${EH_TRACE_OVERHEAD_TOLERANCE:-5}"
bench="$build/bench/perf_model_eval"

if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake --build $build --target perf_model_eval)" >&2
    exit 2
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
"$bench" --benchmark_filter='BM_SimulatedCrcRun' \
         --benchmark_repetitions=5 \
         --benchmark_report_aggregates_only=true \
         --benchmark_format=json >"$raw" 2>/dev/null

python3 - "$raw" "$out" "$tolerance" <<'PY'
import datetime
import json
import os
import sys

raw_path, out_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(raw_path) as f:
    doc = json.load(f)

medians = {}
for b in doc.get("benchmarks", []):
    if b.get("aggregate_name") != "median":
        continue
    name = b["run_name"].split("/")[0]
    medians[name] = b["real_time"]  # ms (benchmark Unit)

try:
    base = medians["BM_SimulatedCrcRun"]
    idle = medians["BM_SimulatedCrcRunSinkIdle"]
    traced = medians["BM_SimulatedCrcRunTraced"]
except KeyError as missing:
    sys.exit(f"error: benchmark {missing} not found in output")

disabled_pct = 100.0 * (idle - base) / base
traced_pct = 100.0 * (traced - base) / base

record = {
    "date": datetime.date.today().isoformat(),
    "benchmark": "perf_model_eval / BM_SimulatedCrcRun (median of 5)",
    "baseline_ms": base,
    "sink_idle_ms": idle,
    "traced_ms": traced,
    "disabled_overhead_pct": round(disabled_pct, 3),
    "traced_overhead_pct": round(traced_pct, 3),
    "tolerance_pct": tolerance,
}
os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
with open(out_path, "w") as f:
    json.dump(record, f, indent=2)
    f.write("\n")

print(f"baseline {base:.3f} ms, sink-idle {idle:.3f} ms "
      f"({disabled_pct:+.2f}%), traced {traced:.3f} ms "
      f"({traced_pct:+.2f}%) -> {out_path}")
if disabled_pct > tolerance:
    sys.exit(f"FAIL: disabled-tracing overhead {disabled_pct:.2f}% "
             f"exceeds {tolerance:.1f}%")
print(f"OK: disabled-tracing overhead within {tolerance:.1f}%")
PY
