#!/usr/bin/env bash
# Crash-point injection harness for the durable result store
# (docs/STORAGE.md): drives the *real* binaries — eh_explore campaigns
# and eh_cachectl — through the failure modes the store promises to
# survive, and fails loudly when any intact record is lost or a resumed
# campaign diverges from an uninterrupted one.
#
#   1. kill -9 a cached campaign mid-append (several delays), then
#      resume: the final CSV must be byte-identical to a baseline run
#      that was never interrupted, and fsck must never report worse
#      than a torn tail.
#   2. mid-compaction crash states, constructed deterministically at
#      both commit windows (compaction itself is too fast to kill from
#      a shell with any reliability; the in-process SIGKILL lives in
#      tests/test_store.cc): a stray compact.tmp (crashed before the
#      rename) and a published-but-undeleted input set (crashed after).
#      Both must converge to the same live records.
#   3. truncate a segment at EVERY byte offset: every fully-contained
#      frame is still served, fsck flags exactly the torn tails.
#   4. flip a bit at EVERY byte offset of a segment: exactly one frame
#      is quarantined, the other records survive, fsck exits nonzero.
#   5. flip a bit at every byte of a sidecar index: the segment falls
#      back to a frame scan and every record is still served.
#
# Usage: scripts/crash_harness.sh [build-dir]
set -euo pipefail

build="${1:-build}"
explore="$build/tools/eh_explore"
cachectl="$build/tools/eh_cachectl"

for bin in "$explore" "$cachectl"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin not built (cmake --build $build --target eh_explore eh_cachectl)" >&2
        exit 2
    fi
done

work=$(mktemp -d -t eh_crash_harness.XXXXXX)
trap 'rm -rf "$work"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }
note() { echo "== $*"; }

live_of() { # live_of <dir> <name> -> live record count per fsck
    "$cachectl" fsck --dir "$1" --name "$2" 2>/dev/null \
        | awk '/^live records:/ {print $3}' || true
}

# ----------------------------------------------------------------------
# 1. kill -9 mid-append, resume byte-identically.
# The fault grid takes ~1 s single-threaded, so a kill a few hundred ms
# in reliably lands between appends. Worker count differs between the
# baseline, the killed runs, and the resume on purpose: the CSV must not
# care.
grid=fault
cells=3
total=90   # 2 workloads x 3 policies x 5 rates x 3 cells

note "baseline campaign ($total cells, uninterrupted)"
"$explore" campaign --grid $grid --cells $cells --jobs 1 \
    --cache-dir "$work/base" --csv "$work/baseline.csv" >/dev/null

partial_seen=0
for delay in 0.15 0.45 0.75; do
    dir="$work/killed_$delay"
    note "kill -9 campaign after ${delay}s"
    "$explore" campaign --grid $grid --cells $cells --jobs 2 \
        --cache-dir "$dir" >/dev/null 2>&1 &
    pid=$!
    sleep "$delay"
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true

    # The kill must never corrupt an acknowledged record: fsck may see
    # nothing at all (kill landed between frames or after the run) but
    # never an error opening the store.
    rc=0
    "$cachectl" fsck --dir "$dir" --name $grid >/dev/null 2>&1 || rc=$?
    [ "$rc" -le 1 ] || fail "fsck errored (rc=$rc) after kill at ${delay}s"

    live=$(live_of "$dir" $grid)
    live=${live:-0}
    [ "$live" -le "$total" ] || fail "store invented records ($live > $total)"
    if [ "$live" -gt 0 ] && [ "$live" -lt "$total" ]; then
        partial_seen=1
        note "  partial store: $live of $total records survived the kill"
    fi

    note "  resume and compare CSV"
    "$explore" campaign --grid $grid --cells $cells --jobs 4 \
        --cache-dir "$dir" --csv "$dir/resumed.csv" >/dev/null
    cmp "$work/baseline.csv" "$dir/resumed.csv" \
        || fail "resumed CSV differs from baseline (kill at ${delay}s)"
done
if [ "$partial_seen" -eq 0 ]; then
    echo "warning: no kill landed mid-campaign (machine too fast?); resume identity still verified" >&2
fi

# ----------------------------------------------------------------------
# 2. mid-compaction crash states on the baseline store.
store="$work/base/$grid.ehc"
[ -d "$store" ] || fail "expected store directory $store"

note "compaction crash state A: stray compact.tmp (crash before rename)"
echo "half-written compaction output" > "$store/compact.tmp"
"$cachectl" compact --dir "$work/base" --name $grid >/dev/null
[ ! -e "$store/compact.tmp" ] || fail "stray compact.tmp not cleaned"
[ "$(live_of "$work/base" $grid)" = "$total" ] \
    || fail "records lost across crash state A"

note "compaction crash state B: output published, inputs not yet deleted"
cat "$store"/seg-*.ehseg > "$store/seg-000099.ehseg"
live=$(live_of "$work/base" $grid)
[ "$live" = "$total" ] \
    || fail "duplicate segments must dedup to $total records, got $live"
"$cachectl" compact --dir "$work/base" --name $grid >/dev/null
"$cachectl" fsck --dir "$work/base" --name $grid >/dev/null \
    || fail "store not clean after converging crash state B"
"$cachectl" export-jsonl --dir "$work/base" --name $grid \
    --out "$work/base_export.jsonl" >/dev/null
lines=$(wc -l < "$work/base_export.jsonl")
[ "$lines" = "$total" ] || fail "export holds $lines of $total records"

# ----------------------------------------------------------------------
# 3-5. byte-sweep damage on a small store (every offset, real tools).
note "building 6-record sweep store"
"$explore" campaign --grid model --points 6 --jobs 2 \
    --cache-dir "$work/sweep" >/dev/null
python3 - "$cachectl" "$work/sweep" <<'PY'
import struct
import subprocess
import sys
from pathlib import Path

cachectl, sweep_dir = sys.argv[1], sys.argv[2]
store = Path(sweep_dir) / "model.ehc"
seg = next(store.glob("seg-*.ehseg"))
orig = seg.read_bytes()

# Frame boundaries from the headers: magic "EHF1", payload len, CRC.
bounds = [0]
at = 0
while at + 12 <= len(orig):
    magic, length, _crc = struct.unpack_from("<III", orig, at)
    assert magic == 0x31464845, f"bad magic at {at}"
    at += 12 + length
    bounds.append(at)
assert at == len(orig), "trailing bytes in sweep segment"
nframes = len(bounds) - 1
assert nframes == 6, f"expected 6 frames, found {nframes}"

def fsck():
    proc = subprocess.run(
        [cachectl, "fsck", "--dir", sweep_dir, "--name", "model"],
        capture_output=True, text=True)
    stats = {}
    for line in proc.stdout.splitlines():
        key, _, value = line.partition(":")
        parts = value.split()
        if parts and parts[0].isdigit():
            stats[key.strip()] = int(parts[0])
    return proc.returncode, stats

rc, stats = fsck()
assert rc == 0 and stats["intact frames"] == nframes, "sweep store not clean"

print(f"== truncation sweep: {len(orig) + 1} cut points")
for cut in range(len(orig) + 1):
    seg.write_bytes(orig[:cut])
    whole = sum(1 for b in bounds[1:] if b <= cut)
    at_boundary = cut in bounds
    rc, stats = fsck()
    assert rc <= 1, f"cut {cut}: fsck errored (rc={rc})"
    assert stats["intact frames"] == whole, \
        f"cut {cut}: served {stats['intact frames']} of {whole} intact frames"
    assert (rc == 0) == at_boundary, \
        f"cut {cut}: rc={rc} but boundary={at_boundary}"

print(f"== bit-flip sweep: {len(orig)} byte offsets")
for at in range(len(orig)):
    damaged = bytearray(orig)
    damaged[at] ^= 0x40
    seg.write_bytes(bytes(damaged))
    rc, stats = fsck()
    assert rc == 1, f"flip {at}: fsck missed the damage (rc={rc})"
    assert stats["intact frames"] == nframes - 1, \
        f"flip {at}: {stats['intact frames']} intact frames survive"
seg.write_bytes(orig)

# Compact to get a sealed, indexed segment, then damage the sidecar:
# the segment falls back to a frame scan and loses nothing.
subprocess.run([cachectl, "compact", "--dir", sweep_dir,
                "--name", "model"], check=True, capture_output=True)
idx = next(store.glob("seg-*.ehidx"))
idx_orig = idx.read_bytes()
print(f"== index bit-flip sweep: {len(idx_orig)} byte offsets")
for at in range(len(idx_orig)):
    damaged = bytearray(idx_orig)
    damaged[at] ^= 0x40
    idx.write_bytes(bytes(damaged))
    rc, stats = fsck()
    assert rc == 1, f"idx flip {at}: stale index not flagged (rc={rc})"
    assert stats["intact frames"] == nframes, \
        f"idx flip {at}: records lost behind a corrupt index"
idx.write_bytes(idx_orig)
rc, _ = fsck()
assert rc == 0, "sweep store not clean after restore"
print("== sweeps passed")
PY

echo "crash harness: all checks passed"
