/**
 * @file
 * Tests for the dead-cycle variability analysis (Section IV-A2): the
 * quantile mapping, the exact expectation vs the paper's average-case
 * shortcut, and the infeasible-period fraction.
 */

#include <gtest/gtest.h>

#include "core/model.hh"
#include "core/optimum.hh"
#include "core/params.hh"
#include "core/variability.hh"
#include "util/panic.hh"

namespace {

using namespace eh;
using core::Params;

TEST(Variability, QuantileEndpointsAreTheBounds)
{
    Params p = core::illustrativeParams();
    p.backupPeriod = 30.0;
    core::Model m(p);
    EXPECT_DOUBLE_EQ(core::progressQuantile(p, 0.0),
                     m.progress(core::DeadCycleMode::BestCase));
    EXPECT_DOUBLE_EQ(core::progressQuantile(p, 1.0),
                     m.progress(core::DeadCycleMode::WorstCase));
    EXPECT_DOUBLE_EQ(core::progressQuantile(p, 0.5), m.progress());
}

TEST(Variability, QuantilesAreMonotoneNonIncreasing)
{
    Params p = core::illustrativeParams();
    p.backupPeriod = 50.0;
    double last = 2.0;
    for (double c : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        const double q = core::progressQuantile(p, c);
        EXPECT_LE(q, last + 1e-12) << c;
        last = q;
    }
    EXPECT_THROW(core::progressQuantile(p, -0.1), FatalError);
    EXPECT_THROW(core::progressQuantile(p, 1.1), FatalError);
}

TEST(Variability, ExpectationEqualsAverageCaseWhileFeasible)
{
    // p is affine in tau_D while the whole [0, tau_B] range stays
    // feasible, so E[p] = p(tau_B / 2) exactly — the paper's shortcut.
    Params p = core::illustrativeParams();
    p.backupPeriod = 20.0;
    ASSERT_GT(core::Model(p).progress(core::DeadCycleMode::WorstCase),
              0.0);
    EXPECT_NEAR(core::expectedProgressUniformDead(p),
                core::Model(p).progress(), 1e-9);
}

TEST(Variability, ExpectationExceedsShortcutOnceClamped)
{
    // Once part of the tau_D range is infeasible, the clamp at zero
    // bends the curve upward: the true expectation exceeds the
    // average-case shortcut (which can even be 0 while half the periods
    // still progress).
    Params p = core::illustrativeParams();
    p.backupPeriod = 230.0; // worst case dead energy > E, best case fine
    ASSERT_EQ(core::Model(p).progress(core::DeadCycleMode::WorstCase),
              0.0);
    ASSERT_GT(core::Model(p).progress(core::DeadCycleMode::BestCase),
              0.0);
    EXPECT_GT(core::expectedProgressUniformDead(p),
              core::Model(p).progress());
}

TEST(Variability, InfeasibleFractionRegimes)
{
    Params p = core::illustrativeParams();
    p.backupPeriod = 20.0;
    EXPECT_DOUBLE_EQ(core::infeasiblePeriodFraction(p), 0.0);

    p.backupPeriod = 150.0; // clamp point at tau_D* where eps*tau = E
    const double frac = core::infeasiblePeriodFraction(p);
    EXPECT_GT(frac, 0.0);
    EXPECT_LT(frac, 1.0);
    // Clamp point: eps_net * tau_D + e_R = E -> tau_D* ~ 98.5 cycles
    // (E=100, small backup-rate correction); fraction ~ 1 - 98.5/150.
    EXPECT_NEAR(frac, 1.0 - 98.5 / 150.0, 0.02);

    p.backupPeriod = 1.0e6;
    EXPECT_GT(core::infeasiblePeriodFraction(p), 0.99);
}

TEST(Variability, TailProgressSupportsDesignForTail)
{
    // Section IV-A2: designing for the tail means a smaller tau_B. The
    // 95th-percentile progress at the worst-case optimum must beat the
    // 95th-percentile progress at the average-case optimum.
    Params p = core::illustrativeParams();
    const double tau_avg = core::optimalBackupPeriod(p);
    const double tau_wc = core::worstCaseOptimalBackupPeriod(p);
    Params at_avg = p, at_wc = p;
    at_avg.backupPeriod = tau_avg;
    at_wc.backupPeriod = tau_wc;
    EXPECT_GT(core::tailProgress(at_wc, 1.0),
              core::tailProgress(at_avg, 1.0));
    // ...while the average-case optimum wins on the mean, by definition.
    EXPECT_GE(core::Model(at_avg).progress(),
              core::Model(at_wc).progress());
}

} // namespace
