/**
 * @file
 * Unit tests for each backup policy's decision logic, independent of the
 * full simulator: trigger conditions, charged byte accounting, and
 * bookkeeping across backups / power failures / restores.
 */

#include <gtest/gtest.h>

#include "runtime/clank.hh"
#include "runtime/dino.hh"
#include "runtime/hibernus.hh"
#include "runtime/mementos.hh"
#include "runtime/nvp.hh"
#include "runtime/ratchet.hh"
#include "runtime/watchdog.hh"
#include "util/panic.hh"

namespace {

using namespace eh;
using namespace eh::runtime;

/** Minimal CPU/peek stand-ins for policies that ignore them. */
struct Fixture
{
    arch::Program prog;
    mem::AddressSpace mem{256, 65536, mem::NvmTech::Fram};
    arch::Cpu cpu;

    Fixture()
        : prog{"noop",
               {arch::Instruction{arch::Opcode::Nop, 0, 0, 0, 0}},
               {}},
          cpu(prog, mem, arch::CostModel::msp430())
    {
        cpu.reset();
    }
};

arch::StepResult
aluStep(std::uint64_t cycles = 1)
{
    arch::StepResult r;
    r.cls = arch::InstrClass::Alu;
    r.cycles = cycles;
    r.energy = 65.0 * static_cast<double>(cycles);
    return r;
}

arch::StepResult
volatileStore(std::uint64_t addr, std::uint32_t bytes)
{
    arch::StepResult r;
    r.cls = arch::InstrClass::Store;
    r.cycles = 2;
    r.energy = 150.0;
    r.isMem = true;
    r.memIsStore = true;
    r.memNonvolatile = false;
    r.memAddr = addr;
    r.memBytes = bytes;
    return r;
}

arch::MemPeek
nvStorePeek(std::uint64_t addr, std::uint32_t bytes = 4)
{
    arch::MemPeek p;
    p.isMem = true;
    p.isStore = true;
    p.addr = addr;
    p.bytes = bytes;
    p.nonvolatile = true;
    return p;
}

arch::MemPeek
nvLoadPeek(std::uint64_t addr, std::uint32_t bytes = 4)
{
    auto p = nvStorePeek(addr, bytes);
    p.isStore = false;
    return p;
}

TEST(HibernusPolicy, BacksUpBelowThresholdOnly)
{
    Fixture f;
    Hibernus h({.backupThreshold = 0.2,
                .monitorPeriod = 10,
                .adcCycles = 2,
                .adcEnergy = 50.0,
                .sramUsedBytes = 256});
    // Before the monitor period elapses: no check at all.
    auto d = h.beforeStep(f.cpu, {}, {1000.0, 1000.0});
    EXPECT_EQ(d.action, PolicyAction::Continue);
    EXPECT_EQ(d.monitorCycles, 0u);

    // Advance past the monitor period with a healthy supply.
    h.afterStep(f.cpu, aluStep(12));
    d = h.beforeStep(f.cpu, {}, {900.0, 1000.0});
    EXPECT_EQ(d.action, PolicyAction::Continue);
    EXPECT_EQ(d.monitorCycles, 2u) << "an ADC check was due";
    EXPECT_EQ(h.adcChecks(), 1u);

    // Low supply at the next due check: hibernate.
    h.afterStep(f.cpu, aluStep(12));
    d = h.beforeStep(f.cpu, {}, {100.0, 1000.0});
    EXPECT_EQ(d.action, PolicyAction::BackupAndSleep);
}

TEST(HibernusPolicy, StaysAsleepAfterItsBackup)
{
    Fixture f;
    Hibernus h({.backupThreshold = 0.5,
                .monitorPeriod = 1,
                .sramUsedBytes = 128});
    h.afterStep(f.cpu, aluStep(2));
    auto d = h.beforeStep(f.cpu, {}, {10.0, 1000.0});
    ASSERT_EQ(d.action, PolicyAction::BackupAndSleep);
    h.onBackupCommitted({1.0, 1.0});
    h.afterStep(f.cpu, aluStep(2));
    d = h.beforeStep(f.cpu, {}, {5.0, 1000.0});
    EXPECT_EQ(d.action, PolicyAction::Continue)
        << "no second backup in the same period";
    h.onRestore();
    h.afterStep(f.cpu, aluStep(2));
    d = h.beforeStep(f.cpu, {}, {5.0, 1000.0});
    EXPECT_EQ(d.action, PolicyAction::BackupAndSleep)
        << "re-armed for the next period";
}

TEST(HibernusPolicy, ChargesFullSramPerBackup)
{
    Hibernus h({.sramUsedBytes = 777});
    EXPECT_EQ(h.chargedAppBackupBytes(), 777u);
    EXPECT_TRUE(h.savesVolatilePayload());
}

TEST(HibernusPolicy, RejectsBadThreshold)
{
    EXPECT_THROW(Hibernus({.backupThreshold = 0.0}), FatalError);
    EXPECT_THROW(Hibernus({.backupThreshold = 1.0}), FatalError);
}

TEST(MementosPolicy, BacksUpAtCheckpointWhenLow)
{
    Mementos m({.backupThreshold = 0.5,
                .checkCycles = 3,
                .checkEnergy = 30.0,
                .sramUsedBytes = 256});
    auto d = m.onCheckpointOp({800.0, 1000.0});
    EXPECT_EQ(d.action, PolicyAction::Continue);
    EXPECT_EQ(d.monitorCycles, 3u);
    d = m.onCheckpointOp({300.0, 1000.0});
    EXPECT_EQ(d.action, PolicyAction::Backup);
    EXPECT_EQ(m.checkpointsSeen(), 2u);
    EXPECT_EQ(m.checkpointsTaken(), 1u);
}

TEST(MementosPolicy, IgnoresOrdinarySteps)
{
    Fixture f;
    Mementos m({.sramUsedBytes = 64});
    for (int i = 0; i < 100; ++i) {
        m.afterStep(f.cpu, aluStep());
        EXPECT_EQ(m.beforeStep(f.cpu, {}, {1.0, 1000.0}).action,
                  PolicyAction::Continue);
    }
}

TEST(DinoPolicy, CommitsUnconditionallyAtTaskBoundaries)
{
    Dino d({.sramUsedBytes = 512});
    EXPECT_EQ(d.onCheckpointOp({999.0, 1000.0}).action,
              PolicyAction::Backup);
    EXPECT_EQ(d.onCheckpointOp({1.0, 1000.0}).action,
              PolicyAction::Backup);
}

TEST(DinoPolicy, ChargesOnlyDirtyBytes)
{
    Fixture f;
    Dino d({.sramUsedBytes = 512, .chargeDirtyBytesOnly = true});
    EXPECT_EQ(d.chargedAppBackupBytes(), 0u);
    d.afterStep(f.cpu, volatileStore(100, 4));
    d.afterStep(f.cpu, volatileStore(100, 4)); // same bytes
    d.afterStep(f.cpu, volatileStore(200, 2));
    EXPECT_EQ(d.chargedAppBackupBytes(), 6u);
    d.onBackupCommitted({1.0, 1.0});
    EXPECT_EQ(d.chargedAppBackupBytes(), 0u);
    EXPECT_EQ(d.tasksCommitted(), 1u);
}

TEST(DinoPolicy, IgnoresNonvolatileStores)
{
    Fixture f;
    Dino d({.sramUsedBytes = 512});
    auto store = volatileStore(4096, 4);
    store.memNonvolatile = true;
    d.afterStep(f.cpu, store);
    EXPECT_EQ(d.chargedAppBackupBytes(), 0u)
        << "NVM stores are already durable";
}

TEST(DinoPolicy, CanChargeWholeRegion)
{
    Dino d({.sramUsedBytes = 512, .chargeDirtyBytesOnly = false});
    EXPECT_EQ(d.chargedAppBackupBytes(), 512u);
}

TEST(ClankPolicy, ViolationForcesPreStoreBackup)
{
    Fixture f;
    Clank c({});
    // Load then store to the same NV word: the store must trigger.
    EXPECT_EQ(c.beforeStep(f.cpu, nvLoadPeek(4096), {1.0, 1.0}).action,
              PolicyAction::Continue);
    auto d = c.beforeStep(f.cpu, nvStorePeek(4096), {1.0, 1.0});
    EXPECT_EQ(d.action, PolicyAction::Backup);
    EXPECT_EQ(d.reason, arch::BackupTrigger::Violation);
    // After the backup commits, the same store is clean.
    c.onBackupCommitted({1.0, 1.0});
    EXPECT_EQ(c.beforeStep(f.cpu, nvStorePeek(4096), {1.0, 1.0}).action,
              PolicyAction::Continue);
}

TEST(ClankPolicy, WatchdogFires)
{
    Fixture f;
    Clank c({.watchdogCycles = 100});
    c.afterStep(f.cpu, aluStep(99));
    EXPECT_EQ(c.beforeStep(f.cpu, {}, {1.0, 1.0}).action,
              PolicyAction::Continue);
    c.afterStep(f.cpu, aluStep(1));
    auto d = c.beforeStep(f.cpu, {}, {1.0, 1.0});
    EXPECT_EQ(d.action, PolicyAction::Backup);
    EXPECT_EQ(d.reason, arch::BackupTrigger::Watchdog);
}

TEST(ClankPolicy, ChargesArchOnlyAndNoPayload)
{
    Clank c({.archBytes = 80});
    EXPECT_EQ(c.chargedAppBackupBytes(), 0u);
    EXPECT_EQ(c.chargedArchBytes(), 80u);
    EXPECT_FALSE(c.savesVolatilePayload());
}

TEST(ClankPolicy, VolatileAccessesAreNotTracked)
{
    Fixture f;
    Clank c({});
    auto peek = nvLoadPeek(16);
    peek.nonvolatile = false;
    c.beforeStep(f.cpu, peek, {1.0, 1.0});
    auto store = nvStorePeek(16);
    store.nonvolatile = false;
    EXPECT_EQ(c.beforeStep(f.cpu, store, {1.0, 1.0}).action,
              PolicyAction::Continue);
    EXPECT_EQ(c.tracker().stats().loadsObserved, 0u);
}

TEST(NvpPolicy, BacksUpEveryNInstructions)
{
    Fixture f;
    Nvp n({.backupEveryInstructions = 3, .archBytes = 4});
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(n.beforeStep(f.cpu, {}, {1.0, 1.0}).action,
                  PolicyAction::Continue)
            << i;
        n.afterStep(f.cpu, aluStep());
    }
    EXPECT_EQ(n.beforeStep(f.cpu, {}, {1.0, 1.0}).action,
              PolicyAction::Backup);
    n.onBackupCommitted({1.0, 1.0});
    EXPECT_EQ(n.beforeStep(f.cpu, {}, {1.0, 1.0}).action,
              PolicyAction::Continue);
}

TEST(NvpPolicy, RejectsZeroInterval)
{
    EXPECT_THROW(Nvp({.backupEveryInstructions = 0}), FatalError);
}

TEST(RatchetPolicy, AnyStoreAfterLoadBreaksSection)
{
    Fixture f;
    Ratchet r({});
    // Store before any load: no break (write-first sections are safe).
    EXPECT_EQ(r.beforeStep(f.cpu, nvStorePeek(4096), {1.0, 1.0}).action,
              PolicyAction::Continue);
    // A load anywhere...
    auto load = nvLoadPeek(8192);
    r.beforeStep(f.cpu, load, {1.0, 1.0});
    auto step = volatileStore(8192, 4);
    step.memNonvolatile = true;
    step.memIsStore = false; // it was a load
    r.afterStep(f.cpu, step);
    // ...makes the NEXT store — to a different address — break too
    // (the compiler cannot prove it is not a WAR).
    auto d = r.beforeStep(f.cpu, nvStorePeek(4096), {1.0, 1.0});
    EXPECT_EQ(d.action, PolicyAction::Backup);
    EXPECT_EQ(d.reason, arch::BackupTrigger::Violation);
    EXPECT_EQ(r.warBreaks(), 1u);
    // After the checkpoint the section is clean again.
    r.onBackupCommitted({1.0, 1.0});
    EXPECT_EQ(r.beforeStep(f.cpu, nvStorePeek(4096), {1.0, 1.0}).action,
              PolicyAction::Continue);
}

TEST(RatchetPolicy, SectionCapActsAsWatchdog)
{
    Fixture f;
    Ratchet r({.maxSectionCycles = 100, .archBytes = 80});
    r.afterStep(f.cpu, aluStep(100));
    auto d = r.beforeStep(f.cpu, {}, {1.0, 1.0});
    EXPECT_EQ(d.action, PolicyAction::Backup);
    EXPECT_EQ(d.reason, arch::BackupTrigger::Watchdog);
}

TEST(RatchetPolicy, VolatileTrafficIsIgnored)
{
    Fixture f;
    Ratchet r({});
    auto load = volatileStore(16, 4);
    load.memIsStore = false; // SRAM load
    r.afterStep(f.cpu, load);
    auto store = nvStorePeek(4096);
    store.nonvolatile = false; // SRAM store
    EXPECT_EQ(r.beforeStep(f.cpu, store, {1.0, 1.0}).action,
              PolicyAction::Continue);
}

TEST(WatchdogPolicy, FiresOnCycleBudget)
{
    Fixture f;
    Watchdog w({.periodCycles = 50, .sramUsedBytes = 64});
    w.afterStep(f.cpu, aluStep(49));
    EXPECT_EQ(w.beforeStep(f.cpu, {}, {1.0, 1.0}).action,
              PolicyAction::Continue);
    w.afterStep(f.cpu, aluStep(1));
    EXPECT_EQ(w.beforeStep(f.cpu, {}, {1.0, 1.0}).action,
              PolicyAction::Backup);
    EXPECT_EQ(w.cyclesSinceBackup(), 50u);
    w.onBackupCommitted({1.0, 1.0});
    EXPECT_EQ(w.cyclesSinceBackup(), 0u);
}

TEST(WatchdogPolicy, TracksDirtyFootprintForAlphaB)
{
    Fixture f;
    Watchdog w({.periodCycles = 1000, .sramUsedBytes = 512});
    w.afterStep(f.cpu, volatileStore(0, 4));
    w.afterStep(f.cpu, volatileStore(64, 4));
    w.afterStep(f.cpu, volatileStore(0, 4));
    EXPECT_EQ(w.pendingDirtyBytes(), 8u);
    EXPECT_EQ(w.chargedAppBackupBytes(), 8u);
    w.onPowerFail();
    EXPECT_EQ(w.pendingDirtyBytes(), 0u);
}

TEST(WatchdogPolicy, PeriodIsAdjustable)
{
    Fixture f;
    Watchdog w({.periodCycles = 10, .sramUsedBytes = 64});
    w.setPeriod(100);
    w.afterStep(f.cpu, aluStep(50));
    EXPECT_EQ(w.beforeStep(f.cpu, {}, {1.0, 1.0}).action,
              PolicyAction::Continue);
    EXPECT_THROW(w.setPeriod(0), FatalError);
}

TEST(SupplyView, FractionClampsAndGuards)
{
    EXPECT_DOUBLE_EQ((SupplyView{50.0, 100.0}).fraction(), 0.5);
    EXPECT_DOUBLE_EQ((SupplyView{500.0, 100.0}).fraction(), 1.0);
    EXPECT_DOUBLE_EQ((SupplyView{50.0, 0.0}).fraction(), 0.0);
}

} // namespace
