/**
 * @file
 * Tests for the exploration-campaign engine: JobSpec identity (canonical
 * serialization, content hashing, escaping), the work-stealing thread
 * pool, deterministic parallel execution (bit-identical results and CSV
 * bytes at any worker count), the content-addressed result cache (hit on
 * identical spec+seed, miss on any change), and crash-resume semantics
 * (a partially written store re-executes only the missing cells and
 * tolerates the torn final line a killed run leaves behind).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "explore/cache.hh"
#include "explore/campaign.hh"
#include "explore/job.hh"
#include "explore/threadpool.hh"
#include "util/csv.hh"
#include "util/panic.hh"

namespace {

using namespace eh;
using namespace eh::explore;

/** A unique scratch directory, removed when the test ends. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
    {
        root = std::filesystem::temp_directory_path() /
               ("eh_explore_test_" + tag);
        std::filesystem::remove_all(root);
        std::filesystem::create_directories(root);
    }
    ~ScratchDir() { std::filesystem::remove_all(root); }
    std::string str() const { return root.string(); }

  private:
    std::filesystem::path root;
};

/**
 * Cheap deterministic evaluator: fields depend only on the spec and the
 * job's private RNG stream, never on scheduling. Counts invocations so
 * cache tests can assert exactly which cells executed.
 */
JobResult
countingEval(const JobSpec &spec, Rng &rng, std::atomic<int> &calls)
{
    calls.fetch_add(1);
    return JobResult()
        .set("x2", spec.getDouble("x", 0.0) * 2.0)
        .set("draw", rng.next())
        .set("tag", spec.get("tag", "none"));
}

/** A small campaign grid with string, double and integer parameters. */
std::vector<JobSpec>
sampleGrid(int n)
{
    std::vector<JobSpec> specs;
    for (int i = 0; i < n; ++i) {
        specs.push_back(JobSpec("demo")
                            .set("x", 0.1 * i)
                            .set("tag", i % 2 ? "odd" : "even")
                            .set("cell", i));
    }
    return specs;
}

std::vector<JobResult>
runGrid(const std::vector<JobSpec> &specs, unsigned jobs,
        std::atomic<int> &calls, const std::string &cache_dir = "",
        std::uint64_t seed = 7, bool fresh = false)
{
    CampaignConfig cc;
    cc.name = "test";
    cc.jobs = jobs;
    cc.seed = seed;
    cc.cacheDir = cache_dir;
    cc.cache = !cache_dir.empty();
    cc.fresh = fresh;
    cc.progress = false;
    Campaign campaign(cc);
    for (const auto &spec : specs)
        campaign.add(spec);
    return campaign.run([&](const JobSpec &spec, Rng &rng) {
        return countingEval(spec, rng, calls);
    });
}

std::string
renderCsv(const std::string &path, const std::vector<JobResult> &results)
{
    {
        CsvWriter csv(path, {"x2", "draw", "tag"});
        for (const auto &r : results)
            csv.row({r.str("x2"), r.str("draw"), r.str("tag")});
    }
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(JobSpec, CanonicalIsOrderIndependentAndSorted)
{
    JobSpec a("kind");
    a.set("zeta", 1.0).set("alpha", std::string("x"));
    JobSpec b("kind");
    b.set("alpha", std::string("x")).set("zeta", 1.0);
    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(a.canonical(), "kind|alpha=x|zeta=1");
}

TEST(JobSpec, SetOverwritesAndEscapesDelimiters)
{
    JobSpec s("k");
    s.set("a", std::string("one")).set("a", std::string("two"));
    EXPECT_EQ(s.get("a"), "two");

    JobSpec t("k");
    t.set("weird", std::string("a|b=c%d\ne"));
    const auto canon = t.canonical();
    // The raw delimiters must not appear unescaped in the value part.
    EXPECT_EQ(canon, "k|weird=a%7cb%3dc%25d%0ae");
    EXPECT_EQ(t.get("weird"), "a|b=c%d\ne");
}

TEST(JobSpec, HashIsStableAcrossReleases)
{
    // The content hash keys the on-disk cache and each job's RNG
    // sub-stream; changing it silently invalidates every stored result.
    JobSpec s("validation");
    s.set("workload", std::string("crc"))
        .set("policy", std::string("dino"));
    EXPECT_EQ(s.canonical(), "validation|policy=dino|workload=crc");
    EXPECT_EQ(s.hash(), 0x91f564cc3dc0eea3ull);
}

TEST(JobSpec, NumericParamsRoundTrip)
{
    JobSpec s("k");
    s.set("rate", 1.0e-7).set("third", 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(s.getDouble("rate", 0.0), 1.0e-7);
    EXPECT_EQ(s.getDouble("third", 0.0), 1.0 / 3.0);
    EXPECT_EQ(s.getDouble("absent", 42.0), 42.0);
}

TEST(JobResult, MissingFieldIsFatalButHasIsNot)
{
    JobResult r;
    r.set("present", 1.5);
    EXPECT_TRUE(r.has("present"));
    EXPECT_FALSE(r.has("absent"));
    EXPECT_DOUBLE_EQ(r.num("present"), 1.5);
    EXPECT_THROW(r.num("absent"), FatalError);
    EXPECT_THROW(r.uint("absent"), FatalError);
}

TEST(ResultCache, RecordRoundTripsExactly)
{
    JobSpec spec("kind");
    spec.set("s", std::string("quote\"back\\slash\tand\nnewline"))
        .set("x", 0.1);
    JobResult result;
    result.set("pi", 3.14159265358979312)
        .set("big", std::uint64_t(0xffffffffffffffffull))
        .set("text", std::string("a,b\"c"));

    const std::string line =
        ResultCache::encodeRecord(spec, 0xDEAD, result);
    std::string canonical;
    std::uint64_t hash = 0, seed = 0;
    JobResult decoded;
    ASSERT_TRUE(
        ResultCache::decodeRecord(line, canonical, hash, seed, decoded));
    EXPECT_EQ(canonical, spec.canonical());
    EXPECT_EQ(hash, spec.hash());
    EXPECT_EQ(seed, 0xDEADu);
    EXPECT_EQ(decoded.fields(), result.fields());
}

TEST(ResultCache, TornAndCorruptLinesAreRejected)
{
    JobSpec spec("k");
    spec.set("a", 1.0);
    JobResult result;
    result.set("v", 2.0);
    const std::string line = ResultCache::encodeRecord(spec, 1, result);

    std::string canonical;
    std::uint64_t hash = 0, seed = 0;
    JobResult decoded;
    for (std::size_t cut = 1; cut < line.size(); ++cut) {
        EXPECT_FALSE(ResultCache::decodeRecord(line.substr(0, cut),
                                               canonical, hash, seed,
                                               decoded))
            << "prefix of length " << cut << " decoded";
    }
    EXPECT_FALSE(ResultCache::decodeRecord(line + "x", canonical, hash,
                                           seed, decoded));
    EXPECT_FALSE(ResultCache::decodeRecord("not json", canonical, hash,
                                           seed, decoded));
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.forEach(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;

    std::uint64_t executed = 0;
    for (const auto &w : pool.workerStats())
        executed += w.executed;
    EXPECT_EQ(executed, n);
}

TEST(ThreadPool, BatchesAreReusableAndEmptyBatchIsFine)
{
    ThreadPool pool(3);
    std::atomic<int> total{0};
    pool.forEach(0, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 0);
    for (int round = 0; round < 20; ++round)
        pool.forEach(17, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 20 * 17);
}

TEST(ThreadPool, FirstExceptionPropagatesAfterDrain)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.forEach(64,
                              [&](std::size_t i) {
                                  ran.fetch_add(1);
                                  if (i == 13)
                                      throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
    // The batch still drains: campaign results stay index-addressable.
    EXPECT_EQ(ran.load(), 64);
}

TEST(Campaign, ResultsAreIdenticalAtAnyWorkerCount)
{
    const auto specs = sampleGrid(40);
    std::atomic<int> calls{0};
    const auto serial = runGrid(specs, 1, calls);
    for (unsigned jobs : {2u, 4u, 16u}) {
        const auto parallel = runGrid(specs, jobs, calls);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(parallel[i].fields(), serial[i].fields())
                << "job " << i << " with " << jobs << " workers";
        }
    }
}

TEST(Campaign, CsvBytesAreIdenticalAtAnyWorkerCount)
{
    ScratchDir dir("csv");
    const auto specs = sampleGrid(24);
    std::atomic<int> calls{0};
    const auto bytes1 = renderCsv(dir.str() + "/j1.csv",
                                  runGrid(specs, 1, calls));
    const auto bytes4 = renderCsv(dir.str() + "/j4.csv",
                                  runGrid(specs, 4, calls));
    const auto bytes16 = renderCsv(dir.str() + "/j16.csv",
                                   runGrid(specs, 16, calls));
    EXPECT_FALSE(bytes1.empty());
    EXPECT_EQ(bytes1, bytes4);
    EXPECT_EQ(bytes1, bytes16);
}

TEST(Campaign, CsvBytesAreIdenticalAcrossStoreGenerations)
{
    // The rendered CSV must not care where the results came from: a
    // legacy JSONL store written by an older build (migrated on open),
    // the segmented store that migration produces, or that store after
    // a compaction pass — at 1 and 16 workers alike.
    ScratchDir dir("storegen");
    const auto specs = sampleGrid(9);
    std::atomic<int> calls{0};
    const auto results = runGrid(specs, 1, calls);
    const auto reference = renderCsv(dir.str() + "/ref.csv", results);
    ASSERT_FALSE(reference.empty());

    for (unsigned jobs : {1u, 16u}) {
        const std::string cdir =
            dir.str() + "/gen" + std::to_string(jobs);
        std::filesystem::create_directories(cdir);
        {
            std::ofstream legacy(cdir + "/test.jsonl");
            for (std::size_t i = 0; i < specs.size(); ++i) {
                legacy << ResultCache::encodeRecord(specs[i], 7,
                                                    results[i])
                       << '\n';
            }
        }
        std::atomic<int> cached{0};

        // Generation 1: every cell served through the migrated legacy
        // records, nothing executed.
        const auto legacyCsv =
            renderCsv(cdir + "/legacy.csv",
                      runGrid(specs, jobs, cached, cdir));
        EXPECT_EQ(cached.load(), 0) << jobs << " workers";
        EXPECT_EQ(legacyCsv, reference) << jobs << " workers";

        // Generation 2: the JSONL is gone; the segmented store serves.
        EXPECT_FALSE(
            std::filesystem::exists(cdir + "/test.jsonl"));
        const auto segmentCsv =
            renderCsv(cdir + "/segment.csv",
                      runGrid(specs, jobs, cached, cdir));
        EXPECT_EQ(cached.load(), 0) << jobs << " workers";
        EXPECT_EQ(segmentCsv, reference) << jobs << " workers";

        // Generation 3: compacted store.
        {
            ResultCache cache(cdir, "test");
            EXPECT_EQ(cache.segments().compact().recordsAfter,
                      specs.size());
        }
        const auto compactCsv =
            renderCsv(cdir + "/compact.csv",
                      runGrid(specs, jobs, cached, cdir));
        EXPECT_EQ(cached.load(), 0) << jobs << " workers";
        EXPECT_EQ(compactCsv, reference) << jobs << " workers";
    }
}

TEST(Campaign, SeedChangesEveryStochasticResult)
{
    const auto specs = sampleGrid(8);
    std::atomic<int> calls{0};
    const auto a = runGrid(specs, 2, calls, "", 7);
    const auto b = runGrid(specs, 2, calls, "", 8);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_NE(a[i].str("draw"), b[i].str("draw")) << "job " << i;
        EXPECT_EQ(a[i].str("x2"), b[i].str("x2")) << "job " << i;
    }
}

TEST(Campaign, WarmCacheSkipsEveryJobAndPreservesBytes)
{
    ScratchDir dir("warm");
    const auto specs = sampleGrid(12);
    std::atomic<int> calls{0};
    const auto cold = runGrid(specs, 4, calls, dir.str());
    EXPECT_EQ(calls.load(), 12);

    const auto warm = runGrid(specs, 4, calls, dir.str());
    EXPECT_EQ(calls.load(), 12) << "warm run must not re-execute";
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(warm[i].fields(), cold[i].fields()) << "job " << i;
}

TEST(Campaign, AnySpecOrSeedChangeMisses)
{
    ScratchDir dir("miss");
    const auto specs = sampleGrid(6);
    std::atomic<int> calls{0};
    (void)runGrid(specs, 2, calls, dir.str());
    EXPECT_EQ(calls.load(), 6);

    // One changed parameter: exactly that cell re-executes.
    auto tweaked = specs;
    tweaked[3].set("x", 123.0);
    (void)runGrid(tweaked, 2, calls, dir.str());
    EXPECT_EQ(calls.load(), 7);

    // A different campaign seed re-executes everything: the records on
    // disk were computed under another seed and must not be served.
    (void)runGrid(specs, 2, calls, dir.str(), 99);
    EXPECT_EQ(calls.load(), 13);

    // fresh=true ignores the store even when it matches.
    (void)runGrid(specs, 2, calls, dir.str(), 7, true);
    EXPECT_EQ(calls.load(), 19);
}

TEST(Campaign, CrashResumeExecutesOnlyMissingJobs)
{
    ScratchDir dir("resume");
    const auto full = sampleGrid(10);
    const std::vector<JobSpec> half(full.begin(), full.begin() + 5);

    // "Crashed" campaign: only half the grid reached the store, and the
    // kill left a torn final line plus unrelated garbage.
    std::atomic<int> calls{0};
    const auto first = runGrid(half, 2, calls, dir.str());
    EXPECT_EQ(calls.load(), 5);
    {
        std::ofstream f(dir.str() + "/test.jsonl",
                        std::ios::app | std::ios::binary);
        f << "garbage line\n";
        f << ResultCache::encodeRecord(full[7], 7, JobResult().set(
                                                      "torn", 1.0))
                 .substr(0, 30); // no newline: a torn tail
    }

    const auto resumed = runGrid(full, 2, calls, dir.str());
    EXPECT_EQ(calls.load(), 10) << "resume must execute exactly the "
                                   "5 missing jobs";
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(resumed[i].fields(), first[i].fields()) << "job " << i;
    // The job whose record was torn mid-write re-executed for real.
    EXPECT_TRUE(resumed[7].has("draw"));
    EXPECT_FALSE(resumed[7].has("torn"));
}

TEST(Campaign, ReportCountsExecutionAndHits)
{
    ScratchDir dir("report");
    const auto specs = sampleGrid(9);
    std::atomic<int> calls{0};

    CampaignConfig cc;
    cc.name = "test";
    cc.jobs = 3;
    cc.cacheDir = dir.str();
    cc.progress = false;
    Campaign campaign(cc);
    for (const auto &spec : specs)
        campaign.add(spec);
    (void)campaign.run([&](const JobSpec &spec, Rng &rng) {
        return countingEval(spec, rng, calls);
    });
    const auto &report = campaign.report();
    EXPECT_EQ(report.total, 9u);
    EXPECT_EQ(report.executed, 9u);
    EXPECT_EQ(report.cacheHits, 0u);
    EXPECT_EQ(report.workers.size(), 3u);
    EXPECT_FALSE(report.cachePath.empty());
    EXPECT_FALSE(report.summary().empty());

    Campaign again(cc);
    for (const auto &spec : specs)
        again.add(spec);
    (void)again.run([&](const JobSpec &spec, Rng &rng) {
        return countingEval(spec, rng, calls);
    });
    EXPECT_EQ(again.report().cacheHits, 9u);
    EXPECT_EQ(again.report().executed, 0u);
}

TEST(Campaign, StochasticJobsGetDistinctStreams)
{
    // Every job's first RNG draw must differ: the sub-stream derivation
    // (campaign seed + job content hash) may not collide across a grid.
    const auto specs = sampleGrid(64);
    std::atomic<int> calls{0};
    const auto results = runGrid(specs, 4, calls);
    std::set<std::string> draws;
    for (const auto &r : results)
        draws.insert(r.str("draw"));
    EXPECT_EQ(draws.size(), specs.size());
}

TEST(ThreadPool, MultipleErrorsReportTheSuppressedCount)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    try {
        pool.forEach(64, [&](std::size_t i) {
            ran.fetch_add(1);
            if (i % 16 == 0) // 4 throwing tasks
                throw std::runtime_error("boom");
        });
        FAIL() << "forEach swallowed the batch errors";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("boom"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what())
                      .find("+3 more task errors suppressed"),
                  std::string::npos);
    }
    EXPECT_EQ(ran.load(), 64);
    std::uint64_t errors = 0;
    for (const auto &w : pool.workerStats())
        errors += w.errors;
    EXPECT_EQ(errors, 4u);
}

TEST(ResultCache, StatusAndErrorRoundTripThroughRecords)
{
    JobSpec spec("kind");
    spec.set("x", 1.0);
    const JobResult failure = JobResult::failure(
        JobStatus::Failed, "divide by \"zero\"\nin cell");

    const std::string line =
        ResultCache::encodeRecord(spec, 9, failure);
    std::string canonical;
    std::uint64_t hash = 0, seed = 0;
    JobResult decoded;
    ASSERT_TRUE(
        ResultCache::decodeRecord(line, canonical, hash, seed, decoded));
    EXPECT_EQ(decoded.status(), JobStatus::Failed);
    EXPECT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error(), failure.error());

    JobStatus parsed = JobStatus::Ok;
    EXPECT_TRUE(parseJobStatus("quarantined", parsed));
    EXPECT_EQ(parsed, JobStatus::Quarantined);
    EXPECT_FALSE(parseJobStatus("exploded", parsed));
}

TEST(ResultCache, SchemaMismatchIsFatalUnlessFresh)
{
    ScratchDir dir("schema");
    const std::string path = dir.str() + "/test.jsonl";
    {
        std::ofstream out(path);
        out << "{\"v\":1,\"hash\":\"00baadf00dbaadf0\",\"seed\":\"7\","
               "\"spec\":\"demo\",\"fields\":{}}\n";
    }
    EXPECT_THROW(ResultCache(dir.str(), "test", false), FatalError);
    // fresh=true tolerates the stale layout (warns and ignores it).
    ResultCache fresh(dir.str(), "test", true);
    EXPECT_EQ(fresh.loadedRecords(), 0u);
}

TEST(Campaign, EvaluatorFailuresAreContainedPerCell)
{
    const auto specs = sampleGrid(12);
    const std::string poison = specs[5].canonical();
    std::atomic<int> calls{0};
    CampaignConfig cc;
    cc.name = "contain";
    cc.jobs = 4;
    cc.cache = false;
    cc.progress = false;
    cc.maxAttempts = 3;
    cc.retryBackoffMs = 1;
    cc.quarantineAfter = 0;
    Campaign campaign(cc);
    for (const auto &spec : specs)
        campaign.add(spec);
    std::atomic<int> poison_calls{0};
    const auto results =
        campaign.run([&](const JobSpec &spec, Rng &rng) {
            if (spec.canonical() == poison) {
                poison_calls.fetch_add(1);
                throw std::runtime_error("synthetic cell fault");
            }
            return countingEval(spec, rng, calls);
        });

    ASSERT_EQ(results.size(), specs.size());
    EXPECT_EQ(poison_calls.load(), 3); // all attempts consumed
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 5) {
            EXPECT_EQ(results[i].status(), JobStatus::Failed);
            EXPECT_NE(results[i].error().find("synthetic cell fault"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(results[i].ok()) << "cell " << i;
        }
    }
    EXPECT_EQ(campaign.report().failed, 1u);
    EXPECT_EQ(campaign.report().failures(), 1u);
    EXPECT_NE(campaign.report().summary().find("1 failed"),
              std::string::npos);
}

TEST(Campaign, TransientFaultsAreAbsorbedByRetry)
{
    const auto specs = sampleGrid(6);
    const std::string flaky = specs[2].canonical();
    std::atomic<int> calls{0}, flaky_calls{0};
    CampaignConfig cc;
    cc.name = "flaky";
    cc.jobs = 2;
    cc.seed = 7; // match runGrid's default for the byte-equality check
    cc.cache = false;
    cc.progress = false;
    cc.maxAttempts = 2;
    cc.retryBackoffMs = 1;
    Campaign campaign(cc);
    for (const auto &spec : specs)
        campaign.add(spec);
    const auto results =
        campaign.run([&](const JobSpec &spec, Rng &rng) {
            if (spec.canonical() == flaky &&
                flaky_calls.fetch_add(1) == 0) {
                throw std::runtime_error("transient hiccup");
            }
            return countingEval(spec, rng, calls);
        });

    EXPECT_EQ(flaky_calls.load(), 2);
    EXPECT_TRUE(results[2].ok());
    EXPECT_EQ(campaign.report().failed, 0u);
    // The retry replays the identical RNG sub-stream, so the recovered
    // result is byte-identical to a never-failed run of the same cell.
    std::atomic<int> calls2{0};
    const auto clean = runGrid(specs, 2, calls2);
    EXPECT_EQ(results[2].fields(), clean[2].fields());
}

TEST(Campaign, FailureRecordsResumeWithoutReexecution)
{
    ScratchDir dir("failresume");
    const auto specs = sampleGrid(8);
    const std::string poison = specs[3].canonical();
    std::atomic<int> poison_calls{0}, calls{0};
    auto eval = [&](const JobSpec &spec, Rng &rng) {
        if (spec.canonical() == poison) {
            poison_calls.fetch_add(1);
            throw std::runtime_error("deterministic fault");
        }
        return countingEval(spec, rng, calls);
    };
    CampaignConfig cc;
    cc.name = "test";
    cc.jobs = 2;
    cc.cacheDir = dir.str();
    cc.progress = false;
    cc.maxAttempts = 1;
    cc.quarantineAfter = 0; // isolate the cache-resume path
    {
        Campaign campaign(cc);
        for (const auto &spec : specs)
            campaign.add(spec);
        (void)campaign.run(eval);
        EXPECT_EQ(campaign.report().failed, 1u);
    }
    EXPECT_EQ(poison_calls.load(), 1);

    // Resume: the Failed record is served from the cache like any other
    // result — the poisoned cell must not execute again.
    {
        Campaign campaign(cc);
        for (const auto &spec : specs)
            campaign.add(spec);
        const auto results = campaign.run(eval);
        EXPECT_EQ(poison_calls.load(), 1);
        EXPECT_EQ(campaign.report().cacheHits, 8u);
        EXPECT_EQ(campaign.report().executed, 0u);
        EXPECT_EQ(results[3].status(), JobStatus::Failed);
        EXPECT_EQ(campaign.report().failed, 1u);
    }

    // --retry-failed re-executes exactly the failed cell.
    cc.retryFailed = true;
    {
        Campaign campaign(cc);
        for (const auto &spec : specs)
            campaign.add(spec);
        (void)campaign.run(eval);
        EXPECT_EQ(poison_calls.load(), 2);
        EXPECT_EQ(campaign.report().executed, 1u);
        EXPECT_EQ(campaign.report().cacheHits, 7u);
    }
}

TEST(Campaign, RepeatOffendersLandInQuarantine)
{
    ScratchDir dir("quarantine");
    const auto specs = sampleGrid(5);
    const std::string poison = specs[1].canonical();
    std::atomic<int> poison_calls{0}, calls{0};
    auto eval = [&](const JobSpec &spec, Rng &rng) {
        if (spec.canonical() == poison) {
            poison_calls.fetch_add(1);
            throw std::runtime_error("hard fault");
        }
        return countingEval(spec, rng, calls);
    };
    CampaignConfig cc;
    cc.name = "test";
    cc.jobs = 2;
    cc.cacheDir = dir.str();
    cc.progress = false;
    cc.maxAttempts = 1;
    cc.quarantineAfter = 2;
    cc.fresh = true; // defeat the result cache so strikes accumulate
    auto runOnce = [&] {
        Campaign campaign(cc);
        for (const auto &spec : specs)
            campaign.add(spec);
        const auto results = campaign.run(eval);
        return std::make_pair(results[1].status(),
                              campaign.report().quarantined);
    };

    EXPECT_EQ(runOnce().first, JobStatus::Failed); // strike 1
    EXPECT_EQ(runOnce().first, JobStatus::Failed); // strike 2: poisoned
    EXPECT_EQ(poison_calls.load(), 2);

    const auto third = runOnce(); // known poison: skipped unexecuted
    EXPECT_EQ(third.first, JobStatus::Quarantined);
    EXPECT_EQ(third.second, 1u);
    EXPECT_EQ(poison_calls.load(), 2);

    // Opting into retries bypasses the quarantine list.
    cc.retryFailed = true;
    (void)runOnce();
    EXPECT_EQ(poison_calls.load(), 3);
}

TEST(Campaign, WatchdogClassifiesOverdueCellsAsTimeout)
{
    const auto specs = sampleGrid(6);
    const std::string slow = specs[4].canonical();
    std::atomic<int> calls{0};
    CampaignConfig cc;
    cc.name = "deadline";
    cc.jobs = 3;
    cc.cache = false;
    cc.progress = false;
    cc.maxAttempts = 1;
    cc.jobTimeoutSeconds = 0.05;
    Campaign campaign(cc);
    for (const auto &spec : specs)
        campaign.add(spec);
    const auto results =
        campaign.run([&](const JobSpec &spec, Rng &rng) {
            if (spec.canonical() == slow) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(400));
            }
            return countingEval(spec, rng, calls);
        });

    EXPECT_EQ(results[4].status(), JobStatus::Timeout);
    EXPECT_NE(results[4].error().find("deadline"), std::string::npos);
    EXPECT_EQ(campaign.report().timedOut, 1u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i != 4)
            EXPECT_TRUE(results[i].ok()) << "cell " << i;
    }
}

TEST(Campaign, ReportRanksTheSlowestCells)
{
    const auto specs = sampleGrid(4);
    const std::string slow = specs[2].canonical();
    std::atomic<int> calls{0};
    CampaignConfig cc;
    cc.name = "slowest";
    cc.jobs = 2;
    cc.cache = false;
    cc.progress = false;
    Campaign campaign(cc);
    for (const auto &spec : specs)
        campaign.add(spec);
    (void)campaign.run([&](const JobSpec &spec, Rng &rng) {
        if (spec.canonical() == slow) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(60));
        }
        return countingEval(spec, rng, calls);
    });

    const auto &rep = campaign.report();
    ASSERT_FALSE(rep.slowest.empty());
    EXPECT_LE(rep.slowest.size(), 5u);
    EXPECT_EQ(rep.slowest.front().index, 2u);
    for (std::size_t k = 1; k < rep.slowest.size(); ++k) {
        EXPECT_GE(rep.slowest[k - 1].seconds,
                  rep.slowest[k].seconds);
    }
}

} // namespace
