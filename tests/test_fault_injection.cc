/**
 * @file
 * Fault-injection torture of the crash-consistency machinery. Every
 * workload runs under every policy with an adversarial FaultPlan — power
 * failures forced at chosen cycles and instruction counts, mid-backup,
 * mid-restore and exactly at the selector-word flip, plus targeted bit
 * flips in committed checkpoint slots and the selector word — across
 * hundreds of seeds. The run must always terminate and produce exactly
 * the reference result words: every injected corruption is either
 * recovered via the older slot (volatile-payload policies) or via a
 * counted restart from program start; never a crash, hang, or silent
 * wrong answer. Also proves the double-buffer atomicity claim directly
 * by killing power at every single cycle of one backup.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "energy/supply.hh"
#include "fault/injector.hh"
#include "runtime/clank.hh"
#include "runtime/dino.hh"
#include "runtime/hibernus.hh"
#include "runtime/mementos.hh"
#include "runtime/nvp.hh"
#include "runtime/ratchet.hh"
#include "runtime/watchdog.hh"
#include "sim/simulator.hh"
#include "util/random.hh"
#include "workloads/workload.hh"

namespace {

using namespace eh;

struct Combo
{
    std::string workload;
    std::string policy;
};

std::vector<Combo>
allCombos()
{
    std::vector<std::string> names = workloads::tableIINames();
    for (const auto &n : workloads::mibenchNames())
        names.push_back(n);
    std::vector<Combo> combos;
    for (const auto &w : names)
        for (const auto &p : {"mementos", "dino", "hibernus", "watchdog",
                              "clank", "nvp", "ratchet"})
            combos.push_back({w, p});
    return combos;
}

bool
isVolatilePolicy(const std::string &p)
{
    return p == "mementos" || p == "dino" || p == "hibernus" ||
           p == "watchdog";
}

std::unique_ptr<runtime::BackupPolicy>
makePolicy(const std::string &name, std::size_t sram_used,
           double budget = 0.0)
{
    if (name == "mementos") {
        runtime::MementosConfig c;
        c.sramUsedBytes = sram_used;
        c.backupThreshold = 0.5;
        return std::make_unique<runtime::Mementos>(c);
    }
    if (name == "dino") {
        runtime::DinoConfig c;
        c.sramUsedBytes = sram_used;
        return std::make_unique<runtime::Dino>(c);
    }
    if (name == "hibernus") {
        runtime::HibernusConfig c;
        c.sramUsedBytes = sram_used;
        const double backup_energy =
            (static_cast<double>(sram_used) + 68.0) * 75.0;
        c.backupThreshold = std::clamp(
            budget > 0.0 ? 2.0 * backup_energy / budget : 0.15, 0.15,
            0.85);
        return std::make_unique<runtime::Hibernus>(c);
    }
    if (name == "watchdog") {
        runtime::WatchdogConfig c;
        c.sramUsedBytes = sram_used;
        c.periodCycles = 2500;
        return std::make_unique<runtime::Watchdog>(c);
    }
    if (name == "clank")
        return std::make_unique<runtime::Clank>(runtime::ClankConfig{});
    if (name == "ratchet")
        return std::make_unique<runtime::Ratchet>(
            runtime::RatchetConfig{.maxSectionCycles = 4000,
                                   .archBytes = 80});
    if (name == "nvp") {
        runtime::NvpConfig c;
        c.backupEveryInstructions = 1;
        return std::make_unique<runtime::Nvp>(c);
    }
    ADD_FAILURE() << "unknown policy " << name;
    return nullptr;
}

class FaultTorture : public ::testing::TestWithParam<Combo>
{
};

/**
 * The headline guarantee: for every workload x policy pair, 200 seeded
 * adversarial runs all finish with the exact reference results, and
 * every detected corruption resolves through the recovery ladder.
 */
TEST_P(FaultTorture, ExactResultsUnderAdversarialFaults)
{
    const auto &[wname, pname] = GetParam();
    const bool vol = isVolatilePolicy(pname);
    const auto layout = vol ? workloads::volatileLayout()
                            : workloads::nonvolatileLayout();
    const auto w = workloads::makeWorkload(wname, layout);

    sim::SimConfig cfg;
    cfg.sramUsedBytes = vol ? w.sramUsedBytes : 64;
    cfg.maxActivePeriods = 60000;

    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    ASSERT_TRUE(golden.halted);
    const double floor_budget = vol ? 2.0e6 : 1.0e6;
    const double budget = std::max(floor_budget, golden.energy / 4.0);

    // Per-combo coverage tallies: the sweep must actually have hit the
    // two hardest points (mid-backup tear, selector-flip death).
    std::uint64_t total_backup_interrupts = 0;
    std::uint64_t total_selector_interrupts = 0;
    std::uint64_t total_corruptions = 0;

    constexpr int seeds = 200;
    for (int seed = 0; seed < seeds; ++seed) {
        fault::FaultPlan plan;
        plan.seed = 0xFA17 + static_cast<std::uint64_t>(seed) * 2654435761ull;
        plan.backupFailProb = 0.08;
        plan.selectorFlipFailProb = 0.08;
        plan.restoreFailProb = 0.04;
        plan.checkpointCorruptionProb = 0.10;
        plan.selectorCorruptionProb = 0.04;
        plan.transientRestoreFaultProb = 0.03;
        plan.maxForcedFailures = 12;
        // Effectively unbounded: a small cap would be spent early in the
        // run, after which every commit is clean and restores would stop
        // exercising the detection path.
        plan.maxBitFlips = 1ull << 40;

        // Forced failure points scattered over the golden run's extent.
        // Lifetime counters include re-execution, so in-range points are
        // guaranteed reachable.
        Rng prng(plan.seed ^ 0x9E3779B97F4A7C15ull);
        plan.failAtInstruction = {
            1 + prng.nextBelow(golden.instructions),
            1 + prng.nextBelow(golden.instructions)};
        plan.failAtCycle = {1 + prng.nextBelow(golden.cycles)};

        energy::ConstantSupply supply(budget);
        auto policy = makePolicy(pname, cfg.sramUsedBytes, budget);
        ASSERT_NE(policy, nullptr);
        fault::FaultInjector injector(plan);

        sim::Simulator s(w.program, *policy, supply, cfg);
        s.attachFaultInjector(&injector);
        const auto stats = s.run();

        ASSERT_TRUE(stats.finished)
            << wname << "/" << pname << " seed " << seed
            << " did not finish:\n" << stats.summary();
        ASSERT_FALSE(stats.gaveUp) << wname << "/" << pname << " seed "
                                   << seed;
        for (std::size_t i = 0; i < w.resultAddrs.size(); ++i) {
            ASSERT_EQ(s.resultWord(w.resultAddrs[i]), w.expected[i])
                << "result word " << i << " of " << wname << " under "
                << pname << " seed " << seed;
        }

        // Counter consistency: stats mirror the injector's tally, the
        // forced-failure cap held, and every slot fallback stems from a
        // detected corruption.
        const auto &c = injector.counters();
        ASSERT_EQ(stats.injectedPowerFailures, c.powerFailures());
        ASSERT_EQ(stats.injectedBitFlips, c.bitFlips());
        ASSERT_LE(c.forcedPowerFailures + c.backupInterrupts +
                      c.selectorFlipInterrupts + c.restoreInterrupts,
                  plan.maxForcedFailures);
        ASSERT_LE(c.bitFlips(), plan.maxBitFlips);
        ASSERT_LE(stats.slotFallbacks, stats.corruptionsDetected);
        ASSERT_LE(stats.restartsFromScratch, cfg.maxRestartsFromScratch);

        total_backup_interrupts += c.backupInterrupts;
        total_selector_interrupts += c.selectorFlipInterrupts;
        total_corruptions += stats.corruptionsDetected;
    }

    // Adversarial coverage across the seed sweep: the pair must have
    // seen mid-backup tears, selector-flip deaths, and detected (then
    // recovered) checkpoint corruption.
    EXPECT_GT(total_backup_interrupts, 0u) << wname << "/" << pname;
    EXPECT_GT(total_selector_interrupts, 0u) << wname << "/" << pname;
    EXPECT_GT(total_corruptions, 0u) << wname << "/" << pname;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, FaultTorture, ::testing::ValuesIn(allCombos()),
    [](const ::testing::TestParamInfo<Combo> &info) {
        return info.param.workload + "_" + info.param.policy;
    });

/**
 * Double-buffer atomicity, proven cycle by cycle: kill power at every
 * single cycle offset of one backup's slot write. Whatever the offset,
 * the previous checkpoint must restore bit-exact — no corruption
 * detected, no fallback, no restart — and results stay exact.
 */
TEST(BackupAtomicity, PowerFailureAtEveryCycleOfABackup)
{
    const auto w =
        workloads::makeWorkload("sense", workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    cfg.maxActivePeriods = 30000;

    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    const double budget = std::max(2.0e6, golden.energy / 6.0);

    // Pilot run without faults: learn how many cycles one backup takes
    // (Dino charges the full payload, so every backup is the same size).
    runtime::DinoConfig dc;
    dc.sramUsedBytes = cfg.sramUsedBytes;
    std::uint64_t backup_cycles = 0;
    {
        runtime::Dino policy(dc);
        energy::ConstantSupply supply(budget);
        sim::Simulator s(w.program, policy, supply, cfg);
        const auto stats = s.run();
        ASSERT_TRUE(stats.finished);
        ASSERT_GE(stats.backups, 3u);
        backup_cycles =
            stats.meter.cycles(energy::Phase::Backup) / stats.backups;
    }
    ASSERT_GT(backup_cycles, 0u);

    for (std::uint64_t c = 0; c < backup_cycles; ++c) {
        fault::FaultPlan plan;
        plan.failBackupIndex = 2; // the third backup attempt
        plan.failBackupAtCycle = c;

        runtime::Dino policy(dc);
        energy::ConstantSupply supply(budget);
        fault::FaultInjector injector(plan);
        sim::Simulator s(w.program, policy, supply, cfg);
        s.attachFaultInjector(&injector);
        const auto stats = s.run();

        ASSERT_TRUE(stats.finished) << "fail at backup cycle " << c;
        ASSERT_EQ(injector.counters().backupInterrupts, 1u)
            << "fail at backup cycle " << c;
        // The torn slot was the *inactive* one: the committed checkpoint
        // must have passed its CRC untouched.
        ASSERT_EQ(stats.corruptionsDetected, 0u)
            << "fail at backup cycle " << c;
        ASSERT_EQ(stats.slotFallbacks, 0u) << "fail at backup cycle " << c;
        ASSERT_EQ(stats.restartsFromScratch, 0u)
            << "fail at backup cycle " << c;
        for (std::size_t i = 0; i < w.resultAddrs.size(); ++i) {
            ASSERT_EQ(s.resultWord(w.resultAddrs[i]), w.expected[i])
                << "fail at backup cycle " << c << " word " << i;
        }
    }
}

/**
 * Targeted corruption of committed checkpoints. A volatile-payload
 * policy recovers through the older slot; an NVM-data policy must never
 * fall back (replaying against mutated NVM is unsound) and restarts
 * from scratch instead. Both still finish with exact results.
 */
TEST(TargetedCorruption, VolatilePolicyFallsBackToOlderSlot)
{
    const auto w =
        workloads::makeWorkload("crc", workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    const double budget = std::max(2.0e6, golden.energy / 6.0);

    // Detection happens only when the *last* commit before a failure is
    // corrupted, and fallback additionally needs the other slot intact
    // — both stochastic, so accumulate evidence across seeds.
    std::uint64_t detections = 0, fallbacks = 0;
    for (int seed = 0; seed < 10; ++seed) {
        fault::FaultPlan plan;
        plan.seed = 42 + static_cast<std::uint64_t>(seed);
        plan.checkpointCorruptionProb = 0.3;
        plan.maxBitFlips = 1ull << 40;

        runtime::DinoConfig dc;
        dc.sramUsedBytes = cfg.sramUsedBytes;
        runtime::Dino policy(dc);
        energy::ConstantSupply supply(budget);
        fault::FaultInjector injector(plan);
        sim::Simulator s(w.program, policy, supply, cfg);
        s.attachFaultInjector(&injector);
        const auto stats = s.run();

        ASSERT_TRUE(stats.finished) << "seed " << seed << "\n"
                                    << stats.summary();
        for (std::size_t i = 0; i < w.resultAddrs.size(); ++i)
            EXPECT_EQ(s.resultWord(w.resultAddrs[i]), w.expected[i])
                << "seed " << seed;
        detections += stats.corruptionsDetected;
        fallbacks += stats.slotFallbacks;
    }
    EXPECT_GT(detections, 0u);
    EXPECT_GT(fallbacks, 0u);
}

TEST(TargetedCorruption, NonvolatilePolicyRestartsInsteadOfFallingBack)
{
    const auto w =
        workloads::makeWorkload("crc", workloads::nonvolatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    const double budget = std::max(1.0e6, golden.energy / 6.0);

    std::uint64_t detections = 0, restarts = 0;
    for (int seed = 0; seed < 10; ++seed) {
        fault::FaultPlan plan;
        plan.seed = 43 + static_cast<std::uint64_t>(seed);
        plan.checkpointCorruptionProb = 0.3;
        plan.maxBitFlips = 1ull << 40;

        runtime::Clank policy({});
        energy::ConstantSupply supply(budget);
        fault::FaultInjector injector(plan);
        sim::Simulator s(w.program, policy, supply, cfg);
        s.attachFaultInjector(&injector);
        const auto stats = s.run();

        ASSERT_TRUE(stats.finished) << "seed " << seed << "\n"
                                    << stats.summary();
        EXPECT_EQ(stats.slotFallbacks, 0u)
            << "NVM-data policies must not replay an older checkpoint";
        for (std::size_t i = 0; i < w.resultAddrs.size(); ++i)
            EXPECT_EQ(s.resultWord(w.resultAddrs[i]), w.expected[i])
                << "seed " << seed;
        detections += stats.corruptionsDetected;
        restarts += stats.restartsFromScratch;
    }
    EXPECT_GT(detections, 0u);
    EXPECT_GT(restarts, 0u);
}

TEST(TargetedCorruption, SelectorWordCorruptionIsRecovered)
{
    const auto w =
        workloads::makeWorkload("sense", workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    const double budget = std::max(2.0e6, golden.energy / 6.0);

    fault::FaultPlan plan;
    plan.seed = 44;
    plan.selectorCorruptionProb = 0.5;
    plan.maxBitFlips = 64;

    runtime::DinoConfig dc;
    dc.sramUsedBytes = cfg.sramUsedBytes;
    runtime::Dino policy(dc);
    energy::ConstantSupply supply(budget);
    fault::FaultInjector injector(plan);
    sim::Simulator s(w.program, policy, supply, cfg);
    s.attachFaultInjector(&injector);
    const auto stats = s.run();

    ASSERT_TRUE(stats.finished) << stats.summary();
    EXPECT_GT(injector.counters().selectorCorruptions, 0u);
    for (std::size_t i = 0; i < w.resultAddrs.size(); ++i)
        EXPECT_EQ(s.resultWord(w.resultAddrs[i]), w.expected[i]);
}

namespace {

/** Dino wrapper counting onRestoreFailed() notifications. */
class CountingDino : public runtime::Dino
{
  public:
    using runtime::Dino::Dino;
    void
    onRestoreFailed() override
    {
        ++restoreFailures;
    }
    std::uint64_t restoreFailures = 0;
};

} // namespace

TEST(TransientRestoreFaults, RetriedAndReportedToThePolicy)
{
    const auto w =
        workloads::makeWorkload("sense", workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    const double budget = std::max(2.0e6, golden.energy / 6.0);

    fault::FaultPlan plan;
    plan.seed = 45;
    plan.transientRestoreFaultProb = 0.4;

    runtime::DinoConfig dc;
    dc.sramUsedBytes = cfg.sramUsedBytes;
    CountingDino policy(dc);
    energy::ConstantSupply supply(budget);
    fault::FaultInjector injector(plan);
    sim::Simulator s(w.program, policy, supply, cfg);
    s.attachFaultInjector(&injector);
    const auto stats = s.run();

    ASSERT_TRUE(stats.finished) << stats.summary();
    EXPECT_GT(stats.transientRestoreFaults, 0u);
    EXPECT_EQ(policy.restoreFailures, stats.transientRestoreFaults +
                                          stats.corruptionsDetected);
    for (std::size_t i = 0; i < w.resultAddrs.size(); ++i)
        EXPECT_EQ(s.resultWord(w.resultAddrs[i]), w.expected[i]);
}

/**
 * When every checkpoint and every selector write is corrupted, recovery
 * can only restart from scratch; the bounded ladder must give up cleanly
 * after the configured number of restarts — terminating, not hanging.
 */
TEST(RecoveryBounds, UnrecoverableCorruptionGivesUpAfterBound)
{
    const auto w =
        workloads::makeWorkload("crc", workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    cfg.maxRestartsFromScratch = 4;
    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    // Too little energy to ever finish in one period, so durable
    // progress is impossible once every checkpoint is poisoned.
    const double budget = std::max(2.0e6, golden.energy / 6.0);

    fault::FaultPlan plan;
    plan.seed = 46;
    plan.checkpointCorruptionProb = 1.0;
    plan.selectorCorruptionProb = 1.0;
    plan.maxBitFlips = UINT64_MAX;

    runtime::DinoConfig dc;
    dc.sramUsedBytes = cfg.sramUsedBytes;
    runtime::Dino policy(dc);
    energy::ConstantSupply supply(budget);
    fault::FaultInjector injector(plan);
    sim::Simulator s(w.program, policy, supply, cfg);
    s.attachFaultInjector(&injector);
    const auto stats = s.run();

    EXPECT_TRUE(stats.gaveUp) << stats.summary();
    EXPECT_FALSE(stats.finished);
    EXPECT_EQ(stats.restartsFromScratch, cfg.maxRestartsFromScratch);
    EXPECT_NE(stats.summary().find("GAVE UP"), std::string::npos);
}

} // namespace
