/**
 * @file
 * Differential proof that the basic-block fast-path engine is
 * bit-identical to the scalar reference interpreter
 * (docs/PERFORMANCE.md). Every workload runs under every policy with
 * both engines across a hundred-plus seeds — energy budgets varied so
 * power failures land mid-span, every third seed with an adversarial
 * fault plan, plus harvesting-supply, NVM-cache and default-capability
 * policy variants — and the complete SimStats fingerprint (every
 * counter and every double, compared by bit pattern), the summary()
 * text, the CPU instruction count, the final supply charge and the
 * result words must match exactly. Not approximately: the block engine
 * claims the same simulation, merely faster.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>

#include "energy/supply.hh"
#include "energy/trace.hh"
#include "fault/injector.hh"
#include "runtime/clank.hh"
#include "runtime/dino.hh"
#include "runtime/hibernus.hh"
#include "runtime/mementos.hh"
#include "runtime/nvp.hh"
#include "runtime/ratchet.hh"
#include "runtime/watchdog.hh"
#include "sim/simulator.hh"
#include "util/random.hh"
#include "workloads/workload.hh"

namespace {

using namespace eh;

/** Append a double's exact bit pattern (not a rounded rendering). */
void
putBits(std::ostringstream &os, const char *tag, double v)
{
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    os << tag << '=' << std::hex << u << std::dec << ' ';
}

void
putStats(std::ostringstream &os, const char *tag, const RunningStats &r)
{
    os << tag << ":n=" << r.count() << ' ';
    putBits(os, "sum", r.sum());
    putBits(os, "mean", r.mean());
    putBits(os, "var", r.variance());
    putBits(os, "min", r.min());
    putBits(os, "max", r.max());
}

/**
 * Every observable of a finished run, doubles by bit pattern. Two runs
 * with equal fingerprints took the same committed trajectory.
 */
std::string
fingerprint(const sim::SimStats &st, sim::Simulator &s,
            const energy::EnergySupply &supply,
            const std::vector<std::uint64_t> &result_addrs)
{
    std::ostringstream os;
    os << "periods=" << st.periods << " backups=" << st.backups
       << " restores=" << st.restores << " pf=" << st.powerFailures
       << " fb=" << st.failedBackups << " fr=" << st.failedRestores
       << " fin=" << st.finished << " gaveUp=" << st.gaveUp
       << " outcome=" << sim::outcomeName(st.outcome)
       << " corr=" << st.corruptionsDetected
       << " fall=" << st.slotFallbacks
       << " restart=" << st.restartsFromScratch
       << " trf=" << st.transientRestoreFaults
       << " ipf=" << st.injectedPowerFailures
       << " ibf=" << st.injectedBitFlips << ' ';
    for (unsigned p = 0;
         p < static_cast<unsigned>(energy::Phase::NumPhases); ++p) {
        const auto ph = static_cast<energy::Phase>(p);
        os << "ph" << p << ":c=" << st.meter.cycles(ph) << ' ';
        putBits(os, "e", st.meter.energy(ph));
    }
    os << "unc:c=" << st.meter.uncommittedCycles() << ' ';
    putBits(os, "e", st.meter.uncommittedEnergy());
    putStats(os, "tauB", st.tauB);
    putStats(os, "tauD", st.tauD);
    putStats(os, "alphaB", st.alphaB);
    putStats(os, "bBytes", st.backupBytes);
    putStats(os, "rBytes", st.restoreBytes);
    putBits(os, "fbe", st.failedBackupEnergy);
    putStats(os, "chg", st.chargeCycles);
    putStats(os, "pe", st.periodEnergy);
    putStats(os, "ppc", st.periodProgressCycles);
    putStats(os, "pp", st.periodProgress);
    for (const auto &[trig, count] : st.triggers)
        os << "trig" << static_cast<int>(trig) << '=' << count << ' ';
    os << "exec=" << s.cpu().instructionsExecuted() << ' ';
    putBits(os, "stored", supply.storedEnergy());
    for (const auto addr : result_addrs)
        os << "w@" << addr << '=' << s.resultWord(addr) << ' ';
    os << '\n' << st.summary();
    return os.str();
}

struct Combo
{
    std::string workload;
    std::string policy;
};

std::vector<Combo>
allCombos()
{
    std::vector<std::string> names = workloads::tableIINames();
    for (const auto &n : workloads::mibenchNames())
        names.push_back(n);
    std::vector<Combo> combos;
    for (const auto &w : names)
        for (const auto &p : {"mementos", "dino", "hibernus", "watchdog",
                              "clank", "nvp", "ratchet"})
            combos.push_back({w, p});
    return combos;
}

bool
isVolatilePolicy(const std::string &p)
{
    return p == "mementos" || p == "dino" || p == "hibernus" ||
           p == "watchdog";
}

std::unique_ptr<runtime::BackupPolicy>
makePolicy(const std::string &name, std::size_t sram_used,
           double budget = 0.0)
{
    if (name == "mementos") {
        runtime::MementosConfig c;
        c.sramUsedBytes = sram_used;
        c.backupThreshold = 0.5;
        return std::make_unique<runtime::Mementos>(c);
    }
    if (name == "dino") {
        runtime::DinoConfig c;
        c.sramUsedBytes = sram_used;
        return std::make_unique<runtime::Dino>(c);
    }
    if (name == "hibernus") {
        runtime::HibernusConfig c;
        c.sramUsedBytes = sram_used;
        const double backup_energy =
            (static_cast<double>(sram_used) + 68.0) * 75.0;
        c.backupThreshold = std::clamp(
            budget > 0.0 ? 2.0 * backup_energy / budget : 0.15, 0.15,
            0.85);
        return std::make_unique<runtime::Hibernus>(c);
    }
    if (name == "watchdog") {
        runtime::WatchdogConfig c;
        c.sramUsedBytes = sram_used;
        c.periodCycles = 2500;
        return std::make_unique<runtime::Watchdog>(c);
    }
    if (name == "clank")
        return std::make_unique<runtime::Clank>(runtime::ClankConfig{});
    if (name == "ratchet")
        return std::make_unique<runtime::Ratchet>(
            runtime::RatchetConfig{.maxSectionCycles = 4000,
                                   .archBytes = 80});
    if (name == "nvp") {
        runtime::NvpConfig c;
        c.backupEveryInstructions = 1;
        return std::make_unique<runtime::Nvp>(c);
    }
    ADD_FAILURE() << "unknown policy " << name;
    return nullptr;
}

/** Adversarial plan used on every third seed (see test_fault_injection). */
fault::FaultPlan
torturePlan(int seed, const sim::GoldenResult &golden)
{
    fault::FaultPlan plan;
    plan.seed = 0xE4E + static_cast<std::uint64_t>(seed) * 2654435761ull;
    plan.backupFailProb = 0.08;
    plan.selectorFlipFailProb = 0.08;
    plan.restoreFailProb = 0.04;
    plan.checkpointCorruptionProb = 0.10;
    plan.selectorCorruptionProb = 0.04;
    plan.transientRestoreFaultProb = 0.03;
    plan.maxForcedFailures = 12;
    plan.maxBitFlips = 1ull << 40;
    Rng prng(plan.seed ^ 0x9E3779B97F4A7C15ull);
    plan.failAtInstruction = {1 + prng.nextBelow(golden.instructions),
                              1 + prng.nextBelow(golden.instructions)};
    plan.failAtCycle = {1 + prng.nextBelow(golden.cycles)};
    return plan;
}

/** One complete run under @p engine; everything rebuilt from scratch. */
std::string
runOnce(sim::ExecEngine engine, const workloads::Workload &w,
        const std::string &pname, const sim::SimConfig &base,
        double budget, const fault::FaultPlan *plan)
{
    sim::SimConfig cfg = base;
    cfg.executionEngine = engine;
    energy::ConstantSupply supply(budget);
    auto policy = makePolicy(pname, cfg.sramUsedBytes, budget);
    if (!policy)
        return "<no policy>";
    std::unique_ptr<fault::FaultInjector> injector;
    if (plan)
        injector = std::make_unique<fault::FaultInjector>(*plan);
    sim::Simulator s(w.program, *policy, supply, cfg);
    if (injector)
        s.attachFaultInjector(injector.get());
    const auto stats = s.run();
    return fingerprint(stats, s, supply, w.resultAddrs);
}

class EngineDifferential : public ::testing::TestWithParam<Combo>
{
};

/**
 * The headline claim: for every workload x policy pair, across 102
 * seeds of varied energy budgets (power failures land on different
 * instructions every time, including mid-span) with an adversarial
 * fault plan every third seed, the block engine's complete fingerprint
 * equals the scalar engine's.
 */
TEST_P(EngineDifferential, BitIdenticalAcrossSeeds)
{
    const auto &[wname, pname] = GetParam();
    const bool vol = isVolatilePolicy(pname);
    const auto layout = vol ? workloads::volatileLayout()
                            : workloads::nonvolatileLayout();
    const auto w = workloads::makeWorkload(wname, layout);

    sim::SimConfig cfg;
    cfg.sramUsedBytes = vol ? w.sramUsedBytes : 64;
    cfg.maxActivePeriods = 60000;

    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    ASSERT_TRUE(golden.halted);
    const double floor_budget = vol ? 2.0e6 : 1.0e6;
    const double base_budget =
        std::max(floor_budget, golden.energy / 4.0);

    constexpr int seeds = 102;
    for (int seed = 0; seed < seeds; ++seed) {
        // Sweep the budget so each seed browns out at different
        // instruction boundaries — mid-span, at span heads, on memory
        // instructions, during backups.
        const double budget = base_budget * (0.6 + 0.1 * (seed % 11));
        fault::FaultPlan plan;
        const bool faulted = seed % 3 == 0;
        if (faulted)
            plan = torturePlan(seed, golden);

        const std::string scalar =
            runOnce(sim::ExecEngine::Scalar, w, pname, cfg, budget,
                    faulted ? &plan : nullptr);
        const std::string block =
            runOnce(sim::ExecEngine::Block, w, pname, cfg, budget,
                    faulted ? &plan : nullptr);
        ASSERT_EQ(scalar, block)
            << wname << "/" << pname << " seed " << seed
            << (faulted ? " (faulted)" : "");
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, EngineDifferential, ::testing::ValuesIn(allCombos()),
    [](const ::testing::TestParamInfo<Combo> &info) {
        return info.param.workload + "_" + info.param.policy;
    });

/**
 * Harvesting supplies exercise the generic (virtual-dispatch) block
 * instantiation and concurrent-harvest energy arithmetic: the brown-out
 * energy actually drained is data-dependent, so any reordering of the
 * per-instruction doubles would show up here.
 */
TEST(EngineDifferentialSupply, HarvestingTracesMatchBitExact)
{
    for (const char *wname : {"crc", "sense"}) {
        for (const char *pname : {"mementos", "dino", "hibernus",
                                  "watchdog", "clank", "nvp",
                                  "ratchet"}) {
            const bool vol = isVolatilePolicy(pname);
            const auto layout = vol ? workloads::volatileLayout()
                                    : workloads::nonvolatileLayout();
            const auto w = workloads::makeWorkload(wname, layout);

            sim::SimConfig cfg;
            cfg.sramUsedBytes = vol ? w.sramUsedBytes : 64;
            cfg.maxActivePeriods = 60000;

            for (int seed = 0; seed < 12; ++seed) {
                const auto runHarvest =
                    [&](sim::ExecEngine engine) -> std::string {
                    sim::SimConfig c = cfg;
                    c.executionEngine = engine;
                    auto traces = energy::makePaperTraces(
                        1234 + static_cast<std::uint64_t>(seed),
                        20'000'000);
                    energy::Transducer tx(0.7, 2000.0, 16.0e6);
                    energy::Capacitor cap(1.5e-6, 3.6, 3.0, 2.2);
                    energy::HarvestingSupply supply(
                        std::move(traces[seed % 3]), tx, cap);
                    auto policy =
                        makePolicy(pname, c.sramUsedBytes, 2.0e6);
                    sim::Simulator s(w.program, *policy, supply, c);
                    const auto stats = s.run();
                    return fingerprint(stats, s, supply, w.resultAddrs);
                };
                ASSERT_EQ(runHarvest(sim::ExecEngine::Scalar),
                          runHarvest(sim::ExecEngine::Block))
                    << wname << "/" << pname << " seed " << seed;
            }
        }
    }
}

/**
 * The NVM cache adds data-dependent per-access costs (fills, dirty
 * evictions) on the memory path — which the block engine must route
 * through the exact same execInstruction() helper.
 */
TEST(EngineDifferentialMemory, NvmCacheMatchesBitExact)
{
    const auto w =
        workloads::makeWorkload("crc", workloads::nonvolatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.enableNvmCache = true;
    cfg.maxActivePeriods = 60000;

    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    ASSERT_TRUE(golden.halted);
    const double base_budget = std::max(1.0e6, golden.energy / 4.0);

    for (const char *pname : {"clank", "nvp", "ratchet"}) {
        for (int seed = 0; seed < 24; ++seed) {
            const double budget =
                base_budget * (0.6 + 0.1 * (seed % 11));
            fault::FaultPlan plan;
            const bool faulted = seed % 3 == 0;
            if (faulted)
                plan = torturePlan(seed, golden);
            ASSERT_EQ(runOnce(sim::ExecEngine::Scalar, w, pname, cfg,
                              budget, faulted ? &plan : nullptr),
                      runOnce(sim::ExecEngine::Block, w, pname, cfg,
                              budget, faulted ? &plan : nullptr))
                << pname << " seed " << seed;
        }
    }
}

namespace {

/**
 * A policy that keeps the conservative default capabilities: it never
 * declared block-safety, so the block engine must transparently run the
 * scalar protocol for it — same results by construction, proven here.
 */
class DefaultCapsWatchdog : public runtime::Watchdog
{
  public:
    using runtime::Watchdog::Watchdog;
    runtime::PolicyCaps
    blockCaps() const override
    {
        return {}; // needsPeek + needsPerInstructionHook
    }
    runtime::DecisionHorizon
    decisionHorizon() const override
    {
        return {};
    }
    void
    onBlockAdvance(std::uint64_t, std::uint64_t) override
    {
    }
};

/**
 * A block-capable policy reporting the *minimum legal* horizon (one
 * instruction): the degenerate quantum path must still be exact.
 */
class OneInstructionHorizonWatchdog : public runtime::Watchdog
{
  public:
    using runtime::Watchdog::Watchdog;
    runtime::DecisionHorizon
    decisionHorizon() const override
    {
        runtime::DecisionHorizon h;
        h.instructions = 1;
        return h;
    }
};

} // namespace

TEST(EnginePolicyContract, DefaultCapsFallBackToScalarExactly)
{
    const auto w =
        workloads::makeWorkload("sense", workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    cfg.maxActivePeriods = 60000;
    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    const double budget = std::max(2.0e6, golden.energy / 4.0);

    runtime::WatchdogConfig wc;
    wc.sramUsedBytes = cfg.sramUsedBytes;
    wc.periodCycles = 2500;

    const auto runWith = [&](sim::ExecEngine engine,
                             auto makeP) -> std::string {
        sim::SimConfig c = cfg;
        c.executionEngine = engine;
        auto policy = makeP();
        energy::ConstantSupply supply(budget);
        sim::Simulator s(w.program, policy, supply, c);
        const auto stats = s.run();
        return fingerprint(stats, s, supply, w.resultAddrs);
    };

    // Default caps: the block engine IS the scalar engine.
    const auto mkDefault = [&] { return DefaultCapsWatchdog(wc); };
    ASSERT_EQ(runWith(sim::ExecEngine::Scalar, mkDefault),
              runWith(sim::ExecEngine::Block, mkDefault));

    // One-instruction horizon: every quantum degenerates to a single
    // exactly-emulated instruction.
    const auto mkOne = [&] { return OneInstructionHorizonWatchdog(wc); };
    ASSERT_EQ(runWith(sim::ExecEngine::Scalar, mkOne),
              runWith(sim::ExecEngine::Block, mkOne));

    // And both wrappers agree with the plain policy they delegate to.
    const auto mkPlain = [&] { return runtime::Watchdog(wc); };
    ASSERT_EQ(runWith(sim::ExecEngine::Block, mkPlain),
              runWith(sim::ExecEngine::Block, mkDefault));
    ASSERT_EQ(runWith(sim::ExecEngine::Block, mkPlain),
              runWith(sim::ExecEngine::Block, mkOne));
}

TEST(EngineSelection, NamesParseAndRoundTrip)
{
    using sim::ExecEngine;
    EXPECT_STREQ(sim::execEngineName(ExecEngine::Auto), "auto");
    EXPECT_STREQ(sim::execEngineName(ExecEngine::Scalar), "scalar");
    EXPECT_STREQ(sim::execEngineName(ExecEngine::Block), "block");
    EXPECT_EQ(sim::parseExecEngine("auto"), ExecEngine::Auto);
    EXPECT_EQ(sim::parseExecEngine("scalar"), ExecEngine::Scalar);
    EXPECT_EQ(sim::parseExecEngine("block"), ExecEngine::Block);
}

TEST(EngineSelection, ExplicitConfigWinsOverDefaults)
{
    using sim::ExecEngine;
    EXPECT_EQ(sim::resolveExecEngine(ExecEngine::Scalar),
              ExecEngine::Scalar);
    EXPECT_EQ(sim::resolveExecEngine(ExecEngine::Block),
              ExecEngine::Block);
    // Auto resolves to *some* concrete engine whatever the environment.
    const auto resolved = sim::resolveExecEngine(ExecEngine::Auto);
    EXPECT_NE(resolved, ExecEngine::Auto);
}

} // namespace
