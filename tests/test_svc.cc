/**
 * @file
 * Exploration-service suite (src/svc/, docs/SERVICE.md). Two halves:
 *
 * Protocol fuzzing — the wire codec must be total: every message type
 * round-trips; a frame truncated at *every byte offset* never yields a
 * message; a frame with *any single bit flipped* is detected (CRC-32
 * catches all single-bit errors) and never forges a message; random
 * garbage and chunked delivery never crash the decoder; a damaged
 * stream is sticky-corrupt (no resynchronization on a byte stream).
 *
 * Service semantics — broker + workers + clients wired through real
 * Unix-domain sockets inside one process: remote results identical to
 * an in-process campaign, warm re-runs fully cached, concurrent
 * campaigns joined to in-flight twins, a crashed worker's leases
 * re-dispatched, evaluator failures retried then contained, version
 * mismatches refused.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "explore/campaign.hh"
#include "explore/job.hh"
#include "svc/broker.hh"
#include "svc/client.hh"
#include "svc/net.hh"
#include "svc/proto.hh"
#include "svc/supervise.hh"
#include "svc/worker.hh"
#include "util/panic.hh"
#include "util/random.hh"

namespace {

using namespace eh;
using namespace eh::svc;
namespace fs = std::filesystem;

/** A unique scratch directory, removed when the test ends. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
    {
        root = fs::temp_directory_path() / ("eh_svc_test_" + tag);
        fs::remove_all(root);
        fs::create_directories(root);
    }
    ~ScratchDir() { fs::remove_all(root); }
    std::string str() const { return root.string(); }
    std::string sock() const { return (root / "svc.sock").string(); }
    std::string cache() const { return (root / "cache").string(); }

  private:
    fs::path root;
};

/** One sample message per type, with every meaningful field set. */
std::vector<Message>
sampleMessages()
{
    std::vector<Message> all;
    Message m;

    m = Message{};
    m.type = MsgType::Hello;
    m.version = protocolVersion;
    m.role = static_cast<std::uint32_t>(PeerRole::Worker);
    m.pid = 4242;
    all.push_back(m);

    m = Message{};
    m.type = MsgType::HelloAck;
    m.version = protocolVersion;
    m.pid = 99;
    all.push_back(m);

    m = Message{};
    m.type = MsgType::Reject;
    m.code = static_cast<std::uint32_t>(RejectCode::Draining);
    m.text = "broker is draining";
    all.push_back(m);

    m = Message{};
    m.type = MsgType::SubmitBatch;
    m.text = "teststore";
    m.seed = 0xDEADBEEFCAFEull;
    m.maxAttempts = 3;
    m.retryFailed = 1;
    m.fresh = 1;
    m.quarantineAfter = 5;
    for (int i = 0; i < 3; ++i) {
        JobRef ref;
        ref.canonical = "kind|cell=" + std::to_string(i);
        ref.hash = 0x1111u * static_cast<unsigned>(i + 1);
        m.jobs.push_back(ref);
    }
    all.push_back(m);

    m = Message{};
    m.type = MsgType::SubmitAck;
    m.batchId = 7;
    m.count = 3;
    m.text = "/tmp/cache/teststore.ehc";
    all.push_back(m);

    m = Message{};
    m.type = MsgType::LeaseRequest;
    m.count = 2;
    all.push_back(m);

    m = Message{};
    m.type = MsgType::LeaseGrant;
    {
        JobRef ref;
        ref.canonical = "kind|cell=0|x=0.5";
        ref.seed = 1234567;
        ref.leaseId = 42;
        m.jobs.push_back(ref);
    }
    all.push_back(m);

    m = Message{};
    m.type = MsgType::Result;
    m.leaseId = 42;
    m.result.status = 1;
    m.result.error = "evaluator threw";
    m.result.fields = {{"y", "0.25"}, {"z", "abc"}};
    all.push_back(m);

    m = Message{};
    m.type = MsgType::ClientResult;
    m.batchId = 7;
    m.index = 2;
    m.cached = 1;
    m.result.status = 0;
    m.result.fields = {{"y", "1"}};
    all.push_back(m);

    m = Message{};
    m.type = MsgType::Heartbeat;
    m.pid = 4242;
    all.push_back(m);

    m = Message{};
    m.type = MsgType::Drain;
    all.push_back(m);

    m = Message{};
    m.type = MsgType::DrainAck;
    all.push_back(m);

    m = Message{};
    m.type = MsgType::Ping;
    all.push_back(m);

    m = Message{};
    m.type = MsgType::Stats;
    m.text = "{\"workers\":2}";
    all.push_back(m);

    return all;
}

void
expectEqualMessages(const Message &a, const Message &b)
{
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.version, b.version);
    EXPECT_EQ(a.role, b.role);
    EXPECT_EQ(a.pid, b.pid);
    EXPECT_EQ(a.code, b.code);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.batchId, b.batchId);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.maxAttempts, b.maxAttempts);
    EXPECT_EQ(a.retryFailed, b.retryFailed);
    EXPECT_EQ(a.fresh, b.fresh);
    EXPECT_EQ(a.quarantineAfter, b.quarantineAfter);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.leaseId, b.leaseId);
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.cached, b.cached);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].canonical, b.jobs[i].canonical);
        EXPECT_EQ(a.jobs[i].hash, b.jobs[i].hash);
        EXPECT_EQ(a.jobs[i].seed, b.jobs[i].seed);
        EXPECT_EQ(a.jobs[i].leaseId, b.jobs[i].leaseId);
    }
    EXPECT_EQ(a.result.status, b.result.status);
    EXPECT_EQ(a.result.error, b.result.error);
    EXPECT_EQ(a.result.fields, b.result.fields);
}

TEST(SvcProto, EveryMessageTypeRoundTrips)
{
    for (const Message &msg : sampleMessages()) {
        const std::string payload = encodePayload(msg);
        Message out;
        ASSERT_TRUE(decodePayload(payload, out))
            << "type " << static_cast<unsigned>(msg.type);
        expectEqualMessages(msg, out);
    }
}

TEST(SvcProto, WireResultPreservesFieldOrderAndStatus)
{
    explore::JobResult result;
    result.set("b", 2.0).set("a", std::string("x")).set("c", true);
    result.setStatus(explore::JobStatus::Timeout, "too slow");
    const explore::JobResult back = fromWire(toWire(result));
    EXPECT_EQ(back.fields(), result.fields());
    EXPECT_EQ(back.status(), result.status());
    EXPECT_EQ(back.error(), result.error());

    WireResult bogus;
    bogus.status = 250; // not a JobStatus
    EXPECT_EQ(fromWire(bogus).status(), explore::JobStatus::Failed);
}

TEST(SvcProto, TrailingBytesAreRejected)
{
    for (const Message &msg : sampleMessages()) {
        std::string payload = encodePayload(msg);
        payload.push_back('\0');
        Message out;
        EXPECT_FALSE(decodePayload(payload, out))
            << "type " << static_cast<unsigned>(msg.type);
    }
}

TEST(SvcProto, PayloadTruncationAtEveryOffsetIsRejected)
{
    for (const Message &msg : sampleMessages()) {
        const std::string payload = encodePayload(msg);
        for (std::size_t len = 0; len < payload.size(); ++len) {
            Message out;
            EXPECT_FALSE(
                decodePayload(payload.substr(0, len), out))
                << "type " << static_cast<unsigned>(msg.type)
                << " truncated to " << len;
        }
    }
}

TEST(SvcFrame, FramesSurviveChunkedDelivery)
{
    const auto all = sampleMessages();
    std::string stream;
    for (const Message &msg : all)
        stream += encodeFrame(msg);
    FrameReader reader;
    std::vector<Message> got;
    std::string payload;
    for (const char byte : stream) {
        reader.feed(&byte, 1); // worst-case one-byte reads
        for (;;) {
            const auto st = reader.next(payload);
            ASSERT_NE(st, FrameReader::Status::Corrupt);
            if (st != FrameReader::Status::Frame)
                break;
            Message out;
            ASSERT_TRUE(decodePayload(payload, out));
            got.push_back(out);
        }
    }
    ASSERT_EQ(got.size(), all.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        expectEqualMessages(all[i], got[i]);
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(SvcFrame, TruncationAtEveryByteOffsetNeverYieldsAFrame)
{
    Message msg;
    msg.type = MsgType::SubmitBatch;
    msg.text = "store";
    msg.seed = 9;
    JobRef ref;
    ref.canonical = "kind|cell=1";
    ref.hash = 77;
    msg.jobs.push_back(ref);
    const std::string frame = encodeFrame(msg);
    for (std::size_t len = 0; len < frame.size(); ++len) {
        FrameReader reader;
        reader.feed(frame.data(), len);
        std::string payload;
        const auto st = reader.next(payload);
        EXPECT_NE(st, FrameReader::Status::Frame)
            << "truncated to " << len;
    }
}

TEST(SvcFrame, EverySingleBitFlipIsDetected)
{
    Message msg;
    msg.type = MsgType::Result;
    msg.leaseId = 123;
    msg.result.status = 0;
    msg.result.fields = {{"y", "0.125"}, {"note", "fine"}};
    const std::string frame = encodeFrame(msg);
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string bent = frame;
            bent[byte] = static_cast<char>(
                static_cast<unsigned char>(bent[byte]) ^ (1u << bit));
            FrameReader reader;
            reader.feed(bent.data(), bent.size());
            std::string payload;
            // CRC-32 detects every single-bit error, so a flipped
            // frame can only come out NeedMore (length grew) or
            // Corrupt (magic/length/CRC check) — never Frame.
            const auto st = reader.next(payload);
            EXPECT_NE(st, FrameReader::Status::Frame)
                << "bit " << bit << " of byte " << byte;
        }
    }
}

TEST(SvcFrame, RandomGarbageNeverCrashesTheDecoder)
{
    Rng rng(0xF00D);
    for (int round = 0; round < 200; ++round) {
        std::string junk(1 + rng.nextBelow(512), '\0');
        for (char &c : junk)
            c = static_cast<char>(rng.nextBelow(256));
        FrameReader reader;
        reader.feed(junk.data(), junk.size());
        std::string payload;
        while (reader.next(payload) == FrameReader::Status::Frame) {
            Message out;
            (void)decodePayload(payload, out); // either verdict is fine
        }
        Message out;
        (void)decodePayload(junk, out);
    }
}

TEST(SvcFrame, CorruptionIsSticky)
{
    Message msg;
    msg.type = MsgType::Ping;
    std::string bad = encodeFrame(msg);
    bad[0] = '?'; // break the magic
    FrameReader reader;
    reader.feed(bad.data(), bad.size());
    std::string payload, why;
    EXPECT_EQ(reader.next(payload, &why), FrameReader::Status::Corrupt);
    EXPECT_FALSE(why.empty());
    const std::string good = encodeFrame(msg);
    reader.feed(good.data(), good.size());
    EXPECT_EQ(reader.next(payload), FrameReader::Status::Corrupt);
    EXPECT_TRUE(reader.corrupt());
}

TEST(SvcFrame, OversizedClaimedLengthIsCorrupt)
{
    std::string frame(frameHeaderBytes, '\0');
    frame[0] = 'E';
    frame[1] = 'H';
    frame[2] = 'S';
    frame[3] = '1';
    const std::uint32_t huge = maxFramePayloadBytes + 1;
    frame[4] = static_cast<char>(huge & 0xff);
    frame[5] = static_cast<char>((huge >> 8) & 0xff);
    frame[6] = static_cast<char>((huge >> 16) & 0xff);
    frame[7] = static_cast<char>((huge >> 24) & 0xff);
    FrameReader reader;
    reader.feed(frame.data(), frame.size());
    std::string payload;
    EXPECT_EQ(reader.next(payload), FrameReader::Status::Corrupt);
}

// --- Service semantics ---------------------------------------------

/** Deterministic evaluator: fields derived from the spec + RNG draw. */
explore::JobResult
gridEval(const explore::JobSpec &spec, Rng &rng)
{
    explore::JobResult result;
    result.set("cell", spec.get("cell"));
    result.set("draw", static_cast<std::uint64_t>(rng.next()));
    return result;
}

std::vector<explore::JobSpec>
gridSpecs(std::size_t n)
{
    std::vector<explore::JobSpec> specs;
    for (std::size_t i = 0; i < n; ++i) {
        explore::JobSpec spec("svcgrid");
        spec.set("cell", static_cast<std::uint64_t>(i));
        specs.push_back(spec);
    }
    return specs;
}

/** Broker + N evaluator threads, torn down in the right order. */
class ServiceFixture
{
  public:
    ServiceFixture(const ScratchDir &dir, unsigned nWorkers,
                   Worker::Evaluator eval = gridEval)
    {
        BrokerConfig bc;
        bc.socketPath = dir.sock();
        bc.cacheDir = dir.cache();
        broker = std::make_unique<Broker>(bc);
        brokerThread = std::thread([this] { broker->run(); });
        for (unsigned i = 0; i < nWorkers; ++i) {
            WorkerConfig wc;
            wc.socketPath = broker->socketPath();
            workers.push_back(std::make_unique<Worker>(wc, eval));
        }
        for (auto &w : workers) {
            workerThreads.emplace_back([&w] {
                try {
                    w->run();
                } catch (const FatalError &) {
                    // Torn down out from under us at test end.
                }
            });
        }
    }

    ~ServiceFixture()
    {
        for (auto &w : workers)
            w->requestStop();
        for (auto &t : workerThreads)
            t.join();
        broker->requestStop();
        brokerThread.join();
    }

    std::unique_ptr<Broker> broker;

  private:
    std::thread brokerThread;
    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::thread> workerThreads;
};

void
expectSameResults(const std::vector<explore::JobResult> &a,
                  const std::vector<explore::JobResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].fields(), b[i].fields()) << "job " << i;
        EXPECT_EQ(a[i].status(), b[i].status()) << "job " << i;
        EXPECT_EQ(a[i].error(), b[i].error()) << "job " << i;
    }
}

TEST(SvcService, RemoteResultsMatchInProcessBitForBit)
{
    const auto specs = gridSpecs(12);

    ScratchDir localDir("inproc");
    explore::CampaignConfig localCfg;
    localCfg.name = "svcgrid";
    localCfg.cacheDir = localDir.str();
    localCfg.progress = false;
    localCfg.seed = 77;
    explore::Campaign campaign(localCfg);
    for (const auto &spec : specs)
        campaign.add(spec);
    const auto localResults = campaign.run(gridEval);

    ScratchDir dir("remote_identity");
    ServiceFixture service(dir, 2);
    explore::CampaignConfig remoteCfg;
    remoteCfg.name = "svcgrid";
    remoteCfg.progress = false;
    remoteCfg.seed = 77;
    remoteCfg.remoteSocket = service.broker->socketPath();
    const RemoteRun run = runCampaign(remoteCfg, specs);

    expectSameResults(localResults, run.results);
    EXPECT_EQ(run.report.total, specs.size());
    EXPECT_EQ(run.report.executed, specs.size());
    EXPECT_EQ(run.report.cacheHits, 0u);

    // Same campaign again: every cell served from the broker's store.
    const RemoteRun warm = runCampaign(remoteCfg, specs);
    expectSameResults(localResults, warm.results);
    EXPECT_EQ(warm.report.cacheHits, specs.size());
    EXPECT_EQ(warm.report.executed, 0u);
    EXPECT_EQ(service.broker->counters().storeHits, specs.size());
}

TEST(SvcService, ConcurrentCampaignsJoinInFlightTwins)
{
    ScratchDir dir("inflight");
    // Slow evaluator widens the window in which the second campaign's
    // submissions find the first campaign's cells still in flight.
    ServiceFixture service(
        dir, 2, [](const explore::JobSpec &spec, Rng &rng) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            return gridEval(spec, rng);
        });
    const auto specs = gridSpecs(10);
    explore::CampaignConfig cfg;
    cfg.name = "svcgrid";
    cfg.progress = false;
    cfg.remoteSocket = service.broker->socketPath();

    RemoteRun runA, runB;
    std::thread a([&] { runA = runCampaign(cfg, specs); });
    std::thread b([&] { runB = runCampaign(cfg, specs); });
    a.join();
    b.join();

    expectSameResults(runA.results, runB.results);
    const BrokerCounters &c = service.broker->counters();
    // Every cell ran at most once; the twin campaign was served from
    // the in-flight table or the store, never by re-execution.
    EXPECT_EQ(c.results, specs.size());
    EXPECT_EQ(c.jobsSubmitted, specs.size());
    EXPECT_GT(c.inflightHits + c.storeHits, 0u);
    EXPECT_EQ(c.inflightHits + c.storeHits, specs.size());
}

TEST(SvcService, CrashedWorkerLeasesAreRedispatched)
{
    ScratchDir dir("redispatch");
    BrokerConfig bc;
    bc.socketPath = dir.sock();
    bc.cacheDir = dir.cache();
    Broker broker(bc);
    std::thread brokerThread([&] { broker.run(); });

    // A fake worker leases one cell and dies without reporting.
    {
        FrameConn fake;
        fake.connect(bc.socketPath, 2000);
        fake.handshake(PeerRole::Worker);

        Client client(bc.socketPath);
        BatchOptions batch;
        batch.name = "svcgrid";
        const auto specs = gridSpecs(3);
        ASSERT_EQ(client.submit(batch, specs), specs.size());

        Message want;
        want.type = MsgType::LeaseRequest;
        want.count = 1;
        ASSERT_TRUE(fake.send(want));
        Message grant;
        ASSERT_TRUE(fake.recv(grant, 2000));
        ASSERT_EQ(grant.type, MsgType::LeaseGrant);
        ASSERT_EQ(grant.jobs.size(), 1u);
        fake.close(); // abrupt death, lease still held

        // A real worker picks up the pieces, crashed cell included.
        WorkerConfig wc;
        wc.socketPath = bc.socketPath;
        Worker rescue(wc, gridEval);
        std::thread rescueThread([&] {
            try {
                rescue.run();
            } catch (const FatalError &) {
            }
        });
        std::size_t okCount = 0;
        Client::Outcome out;
        while (client.nextOutcome(out))
            okCount += out.result.ok() ? 1 : 0;
        EXPECT_EQ(okCount, specs.size());
        rescue.requestStop();
        rescueThread.join();
    }

    EXPECT_GE(broker.counters().workerCrashes, 1u);
    EXPECT_GE(broker.counters().redispatches, 1u);
    broker.requestStop();
    brokerThread.join();
}

TEST(SvcService, EvaluatorFailuresAreRetriedThenContained)
{
    ScratchDir dir("failures");
    ServiceFixture service(
        dir, 1, [](const explore::JobSpec &spec, Rng &) ->
            explore::JobResult {
            if (spec.get("cell") == "1")
                throw std::runtime_error("poison cell");
            explore::JobResult result;
            result.set("cell", spec.get("cell"));
            return result;
        });
    const auto specs = gridSpecs(3);
    explore::CampaignConfig cfg;
    cfg.name = "svcgrid";
    cfg.progress = false;
    cfg.maxAttempts = 2;
    cfg.remoteSocket = service.broker->socketPath();
    const RemoteRun run = runCampaign(cfg, specs);

    ASSERT_EQ(run.results.size(), specs.size());
    EXPECT_TRUE(run.results[0].ok());
    EXPECT_EQ(run.results[1].status(), explore::JobStatus::Failed);
    EXPECT_NE(run.results[1].error().find("poison cell"),
              std::string::npos);
    EXPECT_TRUE(run.results[2].ok());
    EXPECT_EQ(run.report.failed, 1u);
    // maxAttempts=2: the poison cell failed twice (one retry).
    EXPECT_EQ(service.broker->counters().evalFailures, 2u);
    EXPECT_EQ(service.broker->counters().retries, 1u);
}

TEST(SvcService, VersionMismatchIsRejected)
{
    ScratchDir dir("version");
    BrokerConfig bc;
    bc.socketPath = dir.sock();
    bc.cacheDir = dir.cache();
    Broker broker(bc);
    std::thread brokerThread([&] { broker.run(); });

    FrameConn conn;
    conn.connect(bc.socketPath, 2000);
    Message hello;
    hello.type = MsgType::Hello;
    hello.version = protocolVersion + 1;
    hello.role = static_cast<std::uint32_t>(PeerRole::Client);
    ASSERT_TRUE(conn.send(hello));
    Message reply;
    ASSERT_TRUE(conn.recv(reply, 2000));
    EXPECT_EQ(reply.type, MsgType::Reject);
    EXPECT_EQ(reply.code,
              static_cast<std::uint32_t>(RejectCode::VersionMismatch));
    conn.close();

    broker.requestStop();
    brokerThread.join();
}

TEST(SvcService, PingReportsStatsJson)
{
    ScratchDir dir("ping");
    ServiceFixture service(dir, 1);
    const std::string stats = pingBroker(service.broker->socketPath());
    EXPECT_NE(stats.find("\"workers\":"), std::string::npos);
    EXPECT_NE(stats.find("\"results\":"), std::string::npos);
}

// --- Crash recovery and session resume -----------------------------

/** Broker in a forked child: SIGKILL-able with full kill -9 fidelity. */
pid_t
spawnBrokerProcess(const std::string &sock, const std::string &cache)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    int rc = 0;
    try {
        BrokerConfig bc;
        bc.socketPath = sock;
        bc.cacheDir = cache;
        Broker broker(bc);
        broker.run();
    } catch (...) {
        rc = 2;
    }
    ::_exit(rc);
}

/**
 * Worker in a forked child with a patient reconnect budget, so it
 * rides across broker restarts. The evaluator spins while @p gate
 * exists — a cross-process pause switch the test flips to control
 * exactly when cells complete relative to a broker kill.
 */
pid_t
spawnWorkerProcess(const std::string &sock, const std::string &gate,
                   std::uint64_t id, bool poison = false)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    int rc = 0;
    try {
        WorkerConfig wc;
        wc.socketPath = sock;
        wc.reconnectAttempts = 500;
        wc.reconnectBackoffMs = 5;
        wc.reconnectBackoffMaxMs = 40;
        wc.id = id;
        Worker worker(
            wc, [&gate, poison](const explore::JobSpec &spec,
                                Rng &rng) -> explore::JobResult {
                while (!gate.empty() && fs::exists(gate)) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(5));
                }
                if (poison)
                    throw std::runtime_error("poison cell");
                return gridEval(spec, rng);
            });
        worker.run();
    } catch (...) {
        rc = 3;
    }
    ::_exit(rc);
}

void
awaitListener(const std::string &sock)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (!socketHasListener(sock)) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "broker child never started listening on " << sock;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

void
killNine(pid_t pid)
{
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
}

void
reapProcess(pid_t pid)
{
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
}

TEST(SvcResume, BrokerKillNineMidBatchYieldsByteIdenticalResults)
{
    const auto specs = gridSpecs(12);

    // In-process oracle: what the campaign must produce regardless of
    // how many brokers die along the way.
    ScratchDir oracleDir("resume_oracle");
    explore::CampaignConfig oracleCfg;
    oracleCfg.name = "svcgrid";
    oracleCfg.cacheDir = oracleDir.str();
    oracleCfg.progress = false;
    oracleCfg.seed = 77;
    explore::Campaign oracle(oracleCfg);
    for (const auto &spec : specs)
        oracle.add(spec);
    const auto oracleResults = oracle.run(gridEval);

    ScratchDir dir("resume_kill9");
    const std::string gate = dir.str() + "/gate";
    { std::ofstream(gate) << "hold\n"; }

    // Everything lives in child processes: the test process itself
    // stays single-threaded, so the mid-test forks below are safe.
    const pid_t brokerA = spawnBrokerProcess(dir.sock(), dir.cache());
    awaitListener(dir.sock());
    std::vector<pid_t> workerPids;
    for (std::uint64_t id = 1; id <= 2; ++id)
        workerPids.push_back(spawnWorkerProcess(dir.sock(), gate, id));

    ClientConfig cc;
    cc.socketPath = dir.sock();
    cc.resumeAttempts = 40;
    cc.backoffBaseMs = 20;
    cc.backoffCapMs = 200;
    Client client(cc);
    BatchOptions batch;
    batch.name = "svcgrid";
    batch.seed = 77;
    ASSERT_EQ(client.submit(batch, specs), specs.size());

    // The batch is acknowledged and leased, every cell still gated:
    // kill -9 the broker with the whole batch unresolved, restart it,
    // then release the gate. The restarted broker has an empty
    // in-flight table; the client must resubmit and the reconnecting
    // workers must re-execute — deterministically.
    killNine(brokerA);
    const pid_t brokerB = spawnBrokerProcess(dir.sock(), dir.cache());
    awaitListener(dir.sock());
    fs::remove(gate);

    std::vector<explore::JobResult> results(specs.size());
    std::size_t got = 0;
    Client::Outcome out;
    while (client.nextOutcome(out)) {
        ASSERT_LT(out.index, results.size());
        results[out.index] = std::move(out.result);
        ++got;
    }
    EXPECT_EQ(got, specs.size());
    EXPECT_GE(client.resumes(), 1u);
    expectSameResults(oracleResults, results);

    // A warm client against the restarted broker sees pure store hits:
    // nothing the crash interrupted was lost or double-recorded.
    Client warm(cc);
    ASSERT_EQ(warm.submit(batch, specs), specs.size());
    std::size_t cachedHits = 0;
    while (warm.nextOutcome(out))
        cachedHits += out.cached ? 1 : 0;
    EXPECT_EQ(cachedHits, specs.size());

    for (const pid_t pid : workerPids)
        reapProcess(pid);
    reapProcess(brokerB);
}

TEST(SvcResume, BrokerRestartResumesQuarantineStrikeLadder)
{
    ScratchDir dir("resume_quarantine");
    const pid_t brokerA = spawnBrokerProcess(dir.sock(), dir.cache());
    awaitListener(dir.sock());
    const pid_t worker = spawnWorkerProcess(dir.sock(), "", 1,
                                            /*poison=*/true);

    std::vector<explore::JobSpec> specs = gridSpecs(1);
    BatchOptions batch;
    batch.name = "svcgrid";
    batch.seed = 5;
    batch.maxAttempts = 1;
    batch.fresh = true; // never served the cached failure: re-executes
    batch.quarantineAfter = 2;

    const auto runOnce = [&]() -> explore::JobResult {
        Client client(dir.sock());
        EXPECT_EQ(client.submit(batch, specs), 1u);
        Client::Outcome out;
        EXPECT_TRUE(client.nextOutcome(out));
        return out.result;
    };

    // Strike 1 under broker A, then kill -9 it. The strike is already
    // durable (the quarantine log flushes per record).
    const explore::JobResult first = runOnce();
    EXPECT_EQ(first.status(), explore::JobStatus::Failed);
    EXPECT_NE(first.error().find("poison"), std::string::npos);
    killNine(brokerA);

    // Strike 2 under the restarted broker B — the ladder continued,
    // not restarted from zero.
    const pid_t brokerB = spawnBrokerProcess(dir.sock(), dir.cache());
    awaitListener(dir.sock());
    const explore::JobResult second = runOnce();
    EXPECT_EQ(second.status(), explore::JobStatus::Failed);

    // Third run: at the limit. The broker must skip the cell without
    // executing it — a Quarantined verdict naming the recorded
    // strikes, not another evaluator failure.
    const explore::JobResult third = runOnce();
    EXPECT_EQ(third.status(), explore::JobStatus::Quarantined);
    EXPECT_NE(third.error().find("skipped after 2"), std::string::npos);

    reapProcess(worker);
    reapProcess(brokerB);
}

// --- Supervision ---------------------------------------------------

void
awaitChild(Supervisor &sup,
           const std::function<bool(const Supervisor::ChildView &)> &ok)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    for (;;) {
        sup.poll();
        if (ok(sup.children().at(0)))
            return;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "supervised child never reached the expected state";
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

TEST(SvcSupervise, RespawnsKilledChildWithinBudgetThenGivesUp)
{
    SupervisorConfig sc;
    sc.respawnLimit = 2;
    sc.backoffBaseMs = 5;
    sc.backoffCapMs = 20;
    Supervisor sup(sc);
    sup.spawn("sleeper", []() -> int {
        for (;;)
            ::pause();
        return 0;
    }, /*respawn=*/true);

    Supervisor::ChildView view = sup.children().at(0);
    ASSERT_TRUE(view.alive);
    const pid_t firstPid = view.pid;

    // Two SIGKILLs: both inside the budget, both respawned with a new
    // pid.
    ASSERT_EQ(::kill(firstPid, SIGKILL), 0);
    awaitChild(sup, [](const Supervisor::ChildView &c) {
        return c.alive && c.respawns == 1;
    });
    const pid_t secondPid = sup.children().at(0).pid;
    EXPECT_NE(secondPid, firstPid);

    ASSERT_EQ(::kill(secondPid, SIGKILL), 0);
    awaitChild(sup, [](const Supervisor::ChildView &c) {
        return c.alive && c.respawns == 2;
    });

    // Third death exhausts the budget: the child stays down.
    ASSERT_EQ(::kill(sup.children().at(0).pid, SIGKILL), 0);
    awaitChild(sup, [](const Supervisor::ChildView &c) {
        return !c.alive && c.gaveUp;
    });
    EXPECT_EQ(sup.poll(), 0u);
    EXPECT_EQ(sup.alive(), 0u);
}

TEST(SvcSupervise, CleanExitAndDrainAreNeverRespawned)
{
    SupervisorConfig sc;
    sc.backoffBaseMs = 5;
    Supervisor sup(sc);
    sup.spawn("oneshot", []() -> int { return 0; },
              /*respawn=*/true);
    awaitChild(sup, [](const Supervisor::ChildView &c) {
        return !c.alive;
    });
    // Clean exit: done, not a crash — zero respawns consumed.
    EXPECT_EQ(sup.children().at(0).respawns, 0u);
    EXPECT_FALSE(sup.children().at(0).gaveUp);
    EXPECT_EQ(sup.poll(), 0u);

    // A crashing child under drain stays down regardless of budget.
    Supervisor draining(sc);
    draining.spawn("sleeper", []() -> int {
        for (;;)
            ::pause();
        return 0;
    }, /*respawn=*/true);
    draining.drain();
    draining.signalAll(SIGKILL);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (draining.poll() > 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(draining.children().at(0).respawns, 0u);
}

// --- Backoff schedules ---------------------------------------------

TEST(SvcBackoff, WorkerReconnectIsExponentialCappedAndJittered)
{
    WorkerConfig a;
    a.reconnectBackoffMs = 100;
    a.reconnectBackoffMaxMs = 1000;
    a.id = 1;
    WorkerConfig b = a;
    b.id = 2;
    std::vector<unsigned> scheduleA, scheduleB;
    for (unsigned k = 0; k < 8; ++k) {
        const unsigned da = workerReconnectDelayMs(a, k);
        const unsigned db = workerReconnectDelayMs(b, k);
        // Deterministic: the same (config, attempt) always yields the
        // same wait.
        EXPECT_EQ(da, workerReconnectDelayMs(a, k));
        // Exponential base capped at the max, jitter within one base.
        const unsigned expo =
            std::min(100u << std::min(k, 10u), 1000u);
        EXPECT_GE(da, expo) << "attempt " << k;
        EXPECT_LT(da, expo + 100u) << "attempt " << k;
        scheduleA.push_back(da);
        scheduleB.push_back(db);
    }
    // Different worker ids never share a schedule — that is the whole
    // anti-thundering-herd point.
    EXPECT_NE(scheduleA, scheduleB);
}

TEST(SvcBackoff, ClientResumeScheduleIsDeterministicPerSession)
{
    ClientConfig cfg;
    cfg.backoffBaseMs = 50;
    cfg.backoffCapMs = 400;
    std::vector<unsigned> one, two, other;
    for (unsigned k = 0; k < 6; ++k) {
        one.push_back(clientResumeDelayMs(cfg, 111, 0, k));
        two.push_back(clientResumeDelayMs(cfg, 111, 0, k));
        other.push_back(clientResumeDelayMs(cfg, 222, 0, k));
        const unsigned expo = std::min(50u << std::min(k, 10u), 400u);
        EXPECT_GE(one.back(), expo);
        EXPECT_LT(one.back(), expo + 50u);
    }
    EXPECT_EQ(one, two);    // reproducible for a given session seed
    EXPECT_NE(one, other);  // distinct campaigns spread out
}

// --- Socket takeover guard -----------------------------------------

TEST(SvcService, LiveBrokerSocketCannotBeStolen)
{
    ScratchDir dir("sock_steal");
    BrokerConfig bc;
    bc.socketPath = dir.sock();
    bc.cacheDir = dir.cache();
    Broker broker(bc); // listening from construction
    ASSERT_TRUE(socketHasListener(bc.socketPath));
    // A second broker on the same path must refuse loudly (exit code 5
    // through runMain) instead of silently unlinking the live socket.
    EXPECT_THROW({ Broker second(bc); }, SocketBusyError);
    // The victim's socket file is untouched and still serviceable.
    EXPECT_TRUE(socketHasListener(bc.socketPath));
}

TEST(SvcService, StaleSocketFileIsReclaimed)
{
    ScratchDir dir("sock_stale");
    // A dead broker's leftover: a bound socket file with no listener.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, dir.sock().c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ::close(fd); // bound but never listened: connect() refuses
    ASSERT_TRUE(fs::exists(dir.sock()));
    ASSERT_FALSE(socketHasListener(dir.sock()));

    BrokerConfig bc;
    bc.socketPath = dir.sock();
    bc.cacheDir = dir.cache();
    Broker broker(bc); // reclaims the stale file and binds
    EXPECT_TRUE(socketHasListener(bc.socketPath));
}

} // namespace
