/**
 * @file
 * Robustness tests for the structured run-outcome taxonomy and the
 * unified CLI error policy: a starved supply classifies Starved, a
 * backup cost exceeding the period budget trips the fail-fast livelock
 * detector long before the period cap, adversarial fault torture still
 * classifies Finished for every backup policy, and runMain() maps the
 * error taxonomy onto distinct exit codes (docs/ROBUSTNESS.md).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "energy/supply.hh"
#include "fault/injector.hh"
#include "runtime/clank.hh"
#include "runtime/dino.hh"
#include "runtime/hibernus.hh"
#include "runtime/mementos.hh"
#include "runtime/nvp.hh"
#include "runtime/ratchet.hh"
#include "runtime/watchdog.hh"
#include "sim/simulator.hh"
#include "util/panic.hh"
#include "util/random.hh"
#include "workloads/workload.hh"

namespace {

using namespace eh;

/** A supply whose charge threshold is unreachable: starves immediately. */
class NeverReadySupply : public energy::EnergySupply
{
  public:
    std::uint64_t
    chargeUntilReady(std::uint64_t) override
    {
        return energy::chargeFailed;
    }
    bool consume(double, std::uint64_t) override { return false; }
    double storedEnergy() const override { return 0.0; }
    double chargeRatePerCycle() const override { return 0.0; }
    double periodBudget() const override { return 1.0; }
    void reset() override {}
};

TEST(Outcome, NamesAreStable)
{
    EXPECT_STREQ(sim::outcomeName(sim::Outcome::Finished), "finished");
    EXPECT_STREQ(sim::outcomeName(sim::Outcome::GaveUp), "gave-up");
    EXPECT_STREQ(sim::outcomeName(sim::Outcome::Starved), "starved");
    EXPECT_STREQ(sim::outcomeName(sim::Outcome::Livelock), "livelock");
    EXPECT_STREQ(sim::outcomeName(sim::Outcome::Fault), "fault");
}

TEST(Outcome, AmpleEnergyClassifiesFinished)
{
    const auto w = workloads::makeWorkload("crc",
                                           workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    runtime::Watchdog policy(
        {.periodCycles = 5000, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(1e12);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    EXPECT_TRUE(stats.finished);
    EXPECT_EQ(stats.outcome, sim::Outcome::Finished);
    EXPECT_NE(stats.summary().find("outcome: finished"),
              std::string::npos);
}

TEST(Outcome, StarvedSupplyClassifiesStarved)
{
    const auto w = workloads::makeWorkload("crc",
                                           workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    runtime::Watchdog policy(
        {.periodCycles = 5000, .sramUsedBytes = cfg.sramUsedBytes});
    NeverReadySupply supply;
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    EXPECT_FALSE(stats.finished);
    EXPECT_EQ(stats.outcome, sim::Outcome::Starved);
    EXPECT_EQ(stats.periods, 0u);
    EXPECT_NE(stats.summary().find("outcome: starved"),
              std::string::npos);
}

/**
 * A per-period budget below the cost of a single instruction is the
 * dead-region configuration of Section III: every period browns out
 * before committing anything. The detector must classify Livelock after
 * exactly livelockPeriodLimit zero-progress periods instead of grinding
 * through the full maxActivePeriods budget.
 */
TEST(Outcome, BackupExceedingBudgetClassifiesLivelockEarly)
{
    const auto w = workloads::makeWorkload("crc",
                                           workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    cfg.maxActivePeriods = 100000;
    cfg.livelockPeriodLimit = 48;
    runtime::Watchdog policy(
        {.periodCycles = 5000, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(10.0); // below one instruction's cost
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    EXPECT_FALSE(stats.finished);
    EXPECT_EQ(stats.outcome, sim::Outcome::Livelock);
    EXPECT_EQ(stats.periods, cfg.livelockPeriodLimit);
    EXPECT_LT(stats.periods, cfg.maxActivePeriods / 100);
    EXPECT_NE(stats.summary().find("outcome: livelock"),
              std::string::npos);
}

TEST(Outcome, DisabledDetectorRunsToThePeriodCap)
{
    const auto w = workloads::makeWorkload("crc",
                                           workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    cfg.maxActivePeriods = 300;
    cfg.livelockPeriodLimit = 0; // opt out of fail-fast
    runtime::Watchdog policy(
        {.periodCycles = 5000, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(10.0);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    EXPECT_FALSE(stats.finished);
    EXPECT_EQ(stats.outcome, sim::Outcome::GaveUp);
    EXPECT_EQ(stats.periods, cfg.maxActivePeriods);
}

TEST(Outcome, ProgressingRunNeverTripsTheDetector)
{
    // A budget that completes the workload over many short periods: the
    // streak must reset on every committed period, so even a limit much
    // smaller than the period count cannot misfire.
    const auto w = workloads::makeWorkload("sense",
                                           workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    cfg.livelockPeriodLimit = 2;
    runtime::Watchdog policy(
        {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(2.5e6);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    EXPECT_TRUE(stats.finished);
    EXPECT_EQ(stats.outcome, sim::Outcome::Finished);
    EXPECT_GT(stats.periods, cfg.livelockPeriodLimit);
}

std::unique_ptr<runtime::BackupPolicy>
makeTorturePolicy(const std::string &name, std::size_t sram_used,
                  double budget)
{
    if (name == "mementos") {
        runtime::MementosConfig c;
        c.sramUsedBytes = sram_used;
        c.backupThreshold = 0.5;
        return std::make_unique<runtime::Mementos>(c);
    }
    if (name == "dino") {
        runtime::DinoConfig c;
        c.sramUsedBytes = sram_used;
        return std::make_unique<runtime::Dino>(c);
    }
    if (name == "hibernus") {
        runtime::HibernusConfig c;
        c.sramUsedBytes = sram_used;
        const double backup_energy =
            (static_cast<double>(sram_used) + 68.0) * 75.0;
        c.backupThreshold =
            std::clamp(2.0 * backup_energy / budget, 0.15, 0.85);
        return std::make_unique<runtime::Hibernus>(c);
    }
    if (name == "watchdog") {
        runtime::WatchdogConfig c;
        c.sramUsedBytes = sram_used;
        c.periodCycles = 2500;
        return std::make_unique<runtime::Watchdog>(c);
    }
    if (name == "clank")
        return std::make_unique<runtime::Clank>(runtime::ClankConfig{});
    if (name == "ratchet")
        return std::make_unique<runtime::Ratchet>(
            runtime::RatchetConfig{.maxSectionCycles = 4000,
                                   .archBytes = 80});
    runtime::NvpConfig c;
    c.backupEveryInstructions = 1;
    return std::make_unique<runtime::Nvp>(c);
}

/**
 * The taxonomy must not misclassify recoverable chaos: under the fault
 * torture mix (forced failures, checkpoint corruption, selector flips)
 * every policy still reaches Finished — the detector only fires on
 * genuine zero-progress configurations.
 */
TEST(Outcome, FaultTortureStillClassifiesFinished)
{
    for (const char *pname : {"mementos", "dino", "hibernus", "watchdog",
                              "clank", "nvp", "ratchet"}) {
        const bool vol = std::string(pname) == "mementos" ||
                         std::string(pname) == "dino" ||
                         std::string(pname) == "hibernus" ||
                         std::string(pname) == "watchdog";
        const auto w = workloads::makeWorkload(
            "crc", vol ? workloads::volatileLayout()
                       : workloads::nonvolatileLayout());
        sim::SimConfig cfg;
        cfg.sramUsedBytes = vol ? w.sramUsedBytes : 64;
        cfg.maxActivePeriods = 60000;
        const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
        const double budget =
            std::max(vol ? 2.0e6 : 1.0e6, golden.energy / 4.0);

        for (int seed = 0; seed < 3; ++seed) {
            fault::FaultPlan plan;
            plan.seed = 0x0DDB + static_cast<std::uint64_t>(seed);
            plan.backupFailProb = 0.08;
            plan.selectorFlipFailProb = 0.08;
            plan.restoreFailProb = 0.04;
            plan.checkpointCorruptionProb = 0.10;
            plan.selectorCorruptionProb = 0.04;
            plan.maxForcedFailures = 12;
            plan.maxBitFlips = 1ull << 40;

            energy::ConstantSupply supply(budget);
            auto policy =
                makeTorturePolicy(pname, cfg.sramUsedBytes, budget);
            fault::FaultInjector injector(plan);
            sim::Simulator s(w.program, *policy, supply, cfg);
            s.attachFaultInjector(&injector);
            const auto stats = s.run();
            EXPECT_EQ(stats.outcome, sim::Outcome::Finished)
                << pname << " seed " << seed << ":\n"
                << stats.summary();
        }
    }
}

TEST(RunMain, MapsTheErrorTaxonomyOntoExitCodes)
{
    EXPECT_EQ(runMain([] { return 0; }), 0);
    EXPECT_EQ(runMain([] { return 7; }), 7);
    EXPECT_EQ(runMain([]() -> int { throw FatalError("bad flag"); }),
              exitUserError);
    EXPECT_EQ(runMain([]() -> int { throw PanicError("broken invariant"); }),
              exitInternalError);
    EXPECT_EQ(runMain([]() -> int { throw std::runtime_error("misc"); }),
              exitInternalError);
    EXPECT_EQ(runMain([]() -> int { throw 42; }), exitInternalError);
}

} // namespace
