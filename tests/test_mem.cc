/**
 * @file
 * Tests for the memory substrate: NVM cost tables and persistence, SRAM
 * poisoning, the two-region address map, the write-back cache's dirty
 * tracking at block and byte granularity, and the store queue used for
 * alpha_B characterization.
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"
#include "mem/cache.hh"
#include "mem/nvm.hh"
#include "mem/sram.hh"
#include "mem/store_queue.hh"
#include "util/panic.hh"

namespace {

using namespace eh;
using namespace eh::mem;

TEST(Nvm, RoundTripsData)
{
    Nvm nvm(1024, NvmTech::Fram);
    const std::uint32_t v = 0xDEADBEEF;
    nvm.store32(100, v);
    EXPECT_EQ(nvm.load32(100), v);
}

TEST(Nvm, SurvivesPowerFailure)
{
    Nvm nvm(1024, NvmTech::Fram);
    nvm.store32(0, 42);
    nvm.powerFail();
    EXPECT_EQ(nvm.load32(0), 42u);
}

TEST(Nvm, CostsScaleWithLength)
{
    Nvm nvm(4096, NvmTech::Fram);
    const auto one = nvm.writeCost(1);
    const auto many = nvm.writeCost(100);
    EXPECT_NEAR(many.energy, 100.0 * one.energy, 1e-9);
    EXPECT_GE(many.cycles, one.cycles);
}

TEST(Nvm, TechnologiesHaveThePaperAsymmetries)
{
    const auto fram = defaultCosts(NvmTech::Fram);
    EXPECT_DOUBLE_EQ(fram.readEnergyPerByte, fram.writeEnergyPerByte);

    const auto stt = defaultCosts(NvmTech::SttRam);
    EXPECT_NEAR(stt.writeEnergyPerByte / stt.readEnergyPerByte, 10.0,
                1e-9)
        << "Section VI-A cites ~10x writes for STT-RAM";
    EXPECT_NEAR(stt.readBandwidth / stt.writeBandwidth, 10.0, 1e-9);

    const auto flash = defaultCosts(NvmTech::Flash);
    EXPECT_GT(flash.writeEnergyPerByte / flash.readEnergyPerByte, 20.0);
}

TEST(Nvm, OutOfRangeIsFatal)
{
    Nvm nvm(64, NvmTech::Fram);
    std::uint8_t buf[8];
    EXPECT_THROW(nvm.read(60, buf, 8), FatalError);
    EXPECT_THROW(nvm.write(64, buf, 1), FatalError);
    EXPECT_NO_THROW(nvm.read(56, buf, 8));
}

TEST(Nvm, TracksWearCounters)
{
    Nvm nvm(128, NvmTech::Fram);
    std::uint8_t buf[16] = {};
    nvm.write(0, buf, 16);
    nvm.read(0, buf, 8);
    EXPECT_EQ(nvm.bytesWritten(), 16u);
    EXPECT_EQ(nvm.bytesRead(), 8u);
}

TEST(Sram, PoisonsOnPowerFailure)
{
    Sram sram(64);
    sram.store32(0, 0x12345678);
    sram.powerFail();
    EXPECT_EQ(sram.load32(0), 0xA5A5A5A5u);
    EXPECT_EQ(sram.powerFailures(), 1u);
}

TEST(Sram, OutOfRangeIsFatal)
{
    Sram sram(16);
    EXPECT_THROW(sram.load32(13), FatalError);
    EXPECT_NO_THROW(sram.load32(12));
}

TEST(AddressSpace, RoutesByRegion)
{
    AddressSpace as(256, 1024, NvmTech::Fram);
    EXPECT_FALSE(as.isNonvolatile(0));
    EXPECT_FALSE(as.isNonvolatile(255));
    EXPECT_TRUE(as.isNonvolatile(256));
    EXPECT_EQ(as.limit(), 1280u);
    EXPECT_THROW(as.isNonvolatile(1280), FatalError);
}

TEST(AddressSpace, SramAccessesAreFree)
{
    AddressSpace as(256, 1024, NvmTech::Fram);
    MemAccessResult cost;
    as.store32(16, 7, &cost);
    EXPECT_EQ(cost.cycles, 0u);
    EXPECT_DOUBLE_EQ(cost.energy, 0.0);
    EXPECT_FALSE(cost.nonvolatile);
    EXPECT_EQ(as.load32(16, &cost), 7u);
}

TEST(AddressSpace, NvmAccessesCost)
{
    AddressSpace as(256, 1024, NvmTech::Fram);
    MemAccessResult cost;
    as.store32(512, 9, &cost);
    EXPECT_TRUE(cost.nonvolatile);
    EXPECT_GT(cost.energy, 0.0);
    EXPECT_EQ(as.load32(512, &cost), 9u);
}

TEST(AddressSpace, PowerFailurePoisonsOnlySram)
{
    AddressSpace as(256, 1024, NvmTech::Fram);
    MemAccessResult cost;
    as.store32(0, 111, &cost);
    as.store32(600, 222, &cost);
    as.powerFail();
    EXPECT_EQ(as.load32(0, &cost), 0xA5A5A5A5u);
    EXPECT_EQ(as.load32(600, &cost), 222u);
}

TEST(AddressSpace, StraddlingAccessIsFatal)
{
    AddressSpace as(256, 1024, NvmTech::Fram);
    MemAccessResult cost;
    EXPECT_THROW(as.load32(254, &cost), FatalError);
}

TEST(CachedAddressSpace, HitsAreFreeMissesPayBlockFill)
{
    AddressSpace as(256, 4096, NvmTech::Fram);
    as.attachNvmCache(CacheGeometry{512, 2, 16});
    MemAccessResult cost;
    as.store32(1024, 7, &cost); // cold miss: block fill
    EXPECT_GT(cost.energy, 0.0);
    const double miss_energy = cost.energy;
    as.store32(1028, 8, &cost); // same block: hit, free
    EXPECT_DOUBLE_EQ(cost.energy, 0.0);
    EXPECT_EQ(cost.cycles, 0u);
    // Data is still immediately visible.
    EXPECT_EQ(as.load32(1024, &cost), 7u);
    EXPECT_EQ(as.load32(1028, &cost), 8u);
    EXPECT_GT(miss_energy, 0.0);
}

TEST(CachedAddressSpace, DirtyEvictionPaysWriteback)
{
    AddressSpace as(256, 65536, NvmTech::SttRam);
    as.attachNvmCache(CacheGeometry{64, 2, 16}); // 2 sets, 2 ways
    MemAccessResult cost;
    // Three dirty blocks mapping to one set: third access evicts dirty.
    as.store32(1024, 1, &cost);
    const double fill_only = cost.energy;
    as.store32(1024 + 32, 2, &cost);
    as.store32(1024 + 64, 3, &cost);
    EXPECT_GT(cost.energy, fill_only)
        << "dirty eviction must add an STT-RAM block write";
}

TEST(CachedAddressSpace, DrainChargesBlockGranularity)
{
    AddressSpace as(256, 4096, NvmTech::Fram);
    as.attachNvmCache(CacheGeometry{512, 2, 16});
    MemAccessResult cost;
    as.store32(1024, 1, &cost);
    as.store32(2048, 2, &cost);
    const auto flush = as.drainCache();
    EXPECT_EQ(flush.blocks, 2u);
    EXPECT_EQ(flush.bytesBlock, 32u);
    EXPECT_EQ(flush.bytesExact, 8u);
    // Second drain: nothing left.
    EXPECT_EQ(as.drainCache().blocks, 0u);
}

TEST(CachedAddressSpace, PowerFailureLosesTheCache)
{
    AddressSpace as(256, 4096, NvmTech::Fram);
    as.attachNvmCache(CacheGeometry{512, 2, 16});
    MemAccessResult cost;
    as.store32(1024, 1, &cost);
    as.powerFail();
    EXPECT_EQ(as.drainCache().blocks, 0u) << "dirty state is volatile";
    as.load32(1024, &cost);
    EXPECT_GT(cost.energy, 0.0) << "cold again after the failure";
    // NVM data itself survived (write-through data semantics).
    EXPECT_EQ(as.load32(1024, &cost), 1u);
}

TEST(CachedAddressSpace, NoCacheDrainIsNoop)
{
    AddressSpace as(256, 4096, NvmTech::Fram);
    EXPECT_FALSE(as.hasNvmCache());
    EXPECT_EQ(as.drainCache().blocks, 0u);
}

TEST(Cache, HitsAfterFill)
{
    Cache c(CacheGeometry{256, 2, 16});
    EXPECT_FALSE(c.access(0x100, 4, false)); // miss
    EXPECT_TRUE(c.access(0x104, 4, false));  // same block
    EXPECT_EQ(c.stats().loadMisses, 1u);
    EXPECT_EQ(c.stats().loads, 2u);
}

TEST(Cache, TracksDirtyAtBothGranularities)
{
    Cache c(CacheGeometry{256, 2, 16});
    c.access(0x100, 4, true); // dirty 4 bytes of one 16-byte block
    const auto f = c.flushDirty();
    EXPECT_EQ(f.blocks, 1u);
    EXPECT_EQ(f.bytesBlock, 16u);
    EXPECT_EQ(f.bytesExact, 4u);
}

TEST(Cache, BlockByteInflationIsBlockOverStore)
{
    // One 4-byte store per distinct block: backup traffic at block
    // granularity is beta_block/beta_store times the true dirty bytes —
    // the exact inflation the Section VI-A analysis uses.
    Cache c(CacheGeometry{1024, 4, 16});
    for (int i = 0; i < 8; ++i)
        c.access(0x1000 + i * 16, 4, true);
    const auto f = c.flushDirty();
    EXPECT_EQ(f.blocks, 8u);
    EXPECT_EQ(f.bytesBlock, 8u * 16u);
    EXPECT_EQ(f.bytesExact, 8u * 4u);
    EXPECT_EQ(f.bytesBlock / f.bytesExact, 4u); // 16 / 4
}

TEST(Cache, FlushCleansState)
{
    Cache c(CacheGeometry{256, 2, 16});
    c.access(0x40, 4, true);
    EXPECT_EQ(c.dirtyBlocks(), 1u);
    c.flushDirty();
    EXPECT_EQ(c.dirtyBlocks(), 0u);
    const auto again = c.flushDirty();
    EXPECT_EQ(again.blocks, 0u);
}

TEST(Cache, LruEvictsOldest)
{
    // Direct-mapped-ish: 2 ways, force 3 blocks into one set.
    Cache c(CacheGeometry{64, 2, 16}); // 2 sets, 2 ways
    const std::uint64_t set_stride = 32; // blocks mapping to set 0
    c.access(0 * set_stride, 4, false);
    c.access(2 * set_stride, 4, false);
    c.access(0 * set_stride, 4, false);     // touch to make way-0 MRU
    c.access(4 * set_stride, 4, false);     // evicts 2*stride
    EXPECT_TRUE(c.access(0 * set_stride, 4, false));
    EXPECT_FALSE(c.access(2 * set_stride, 4, false)); // was evicted
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    Cache c(CacheGeometry{64, 2, 16});
    c.access(0, 4, true);
    c.access(32, 4, true);
    c.access(64, 4, true); // evicts a dirty line
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, InvalidateDropsEverything)
{
    Cache c(CacheGeometry{256, 2, 16});
    c.access(0x10, 4, true);
    c.invalidateAll();
    EXPECT_EQ(c.dirtyBlocks(), 0u);
    EXPECT_FALSE(c.access(0x10, 4, false));
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(CacheGeometry{100, 2, 16}), FatalError);
    EXPECT_THROW(Cache(CacheGeometry{256, 3, 16}), FatalError);
    EXPECT_THROW(Cache(CacheGeometry{256, 2, 128}), FatalError);
    EXPECT_THROW(Cache(CacheGeometry{16, 4, 16}), FatalError);
}

TEST(Cache, CrossBlockAccessIsRejected)
{
    Cache c(CacheGeometry{256, 2, 16});
    EXPECT_THROW(c.access(14, 4, false), PanicError);
}

TEST(StoreQueue, CountsUniqueBytes)
{
    StoreQueue q;
    q.recordStore(100, 4);
    q.recordStore(102, 4); // overlaps two bytes
    EXPECT_EQ(q.uniqueBytes(), 6u);
    EXPECT_EQ(q.storeCount(), 2u);
}

TEST(StoreQueue, RepeatedStoresDoNotGrowFootprint)
{
    StoreQueue q;
    for (int i = 0; i < 100; ++i)
        q.recordStore(64, 4);
    EXPECT_EQ(q.uniqueBytes(), 4u);
    EXPECT_EQ(q.storeCount(), 100u);
}

TEST(StoreQueue, ClearAccumulatesLifetime)
{
    StoreQueue q;
    q.recordStore(0, 8);
    q.clear();
    q.recordStore(100, 8);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.lifetimeUniqueBytes(), 16u);
}

} // namespace
