/**
 * @file
 * Tests for the CPU substrate: ISA classification, the assembler's label
 * resolution, the interpreter's semantics (ALU, memory, control flow,
 * sensor determinism, power-failure discipline) and the Clank-style
 * idempotency tracker's detection rules.
 */

#include <gtest/gtest.h>

#include "arch/assembler.hh"
#include "arch/cpu.hh"
#include "arch/isa.hh"
#include "arch/tracker.hh"
#include "mem/address_space.hh"
#include "util/panic.hh"

namespace {

using namespace eh;
using namespace eh::arch;

mem::AddressSpace
smallMem()
{
    return mem::AddressSpace(256, 4096, mem::NvmTech::Fram);
}

Program
assembleAndRun(Assembler &a)
{
    a.halt();
    return a.assemble();
}

/** Run a program to halt and return the CPU for register inspection. */
void
runToHalt(Cpu &cpu, std::uint64_t cap = 100000)
{
    cpu.reset();
    cpu.applyMemInits();
    std::uint64_t n = 0;
    while (!cpu.halted()) {
        ASSERT_LT(n++, cap) << "program did not halt";
        cpu.step();
    }
}

TEST(Isa, EveryOpcodeHasNameAndClass)
{
    for (int op = 0; op <= static_cast<int>(Opcode::Halt); ++op) {
        EXPECT_NE(opcodeName(static_cast<Opcode>(op)), nullptr);
        // classify must not panic for any declared opcode.
        (void)classify(static_cast<Opcode>(op));
    }
}

TEST(Assembler, ResolvesForwardAndBackwardLabels)
{
    Assembler a("labels");
    a.movi(R1, 3);
    a.label("back");
    a.subi(R1, R1, 1);
    a.bne(R1, R0, "back");
    a.b("fwd");
    a.movi(R2, 99); // skipped
    a.label("fwd");
    a.movi(R3, 7);
    const auto prog = assembleAndRun(a);

    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    runToHalt(cpu);
    EXPECT_EQ(cpu.reg(R1), 0u);
    EXPECT_EQ(cpu.reg(R2), 0u);
    EXPECT_EQ(cpu.reg(R3), 7u);
}

TEST(Assembler, UndefinedLabelIsFatal)
{
    Assembler a("bad");
    a.b("nowhere");
    EXPECT_THROW(a.assemble(), FatalError);
}

TEST(Assembler, DuplicateLabelIsFatal)
{
    Assembler a("dup");
    a.label("x");
    EXPECT_THROW(a.label("x"), FatalError);
}

TEST(Cpu, AluSemantics)
{
    Assembler a("alu");
    a.movi(R1, 20).movi(R2, 6);
    a.add(R3, R1, R2);   // 26
    a.sub(R4, R1, R2);   // 14
    a.mul(R5, R1, R2);   // 120
    a.divu(R6, R1, R2);  // 3
    a.remu(R7, R1, R2);  // 2
    a.eor(R8, R1, R2);   // 18
    a.lsli(R9, R2, 3);   // 48
    a.movi(R10, -8);
    a.asri(R11, R10, 2); // -2
    const auto prog = assembleAndRun(a);
    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    runToHalt(cpu);
    EXPECT_EQ(cpu.reg(R3), 26u);
    EXPECT_EQ(cpu.reg(R4), 14u);
    EXPECT_EQ(cpu.reg(R5), 120u);
    EXPECT_EQ(cpu.reg(R6), 3u);
    EXPECT_EQ(cpu.reg(R7), 2u);
    EXPECT_EQ(cpu.reg(R8), 18u);
    EXPECT_EQ(cpu.reg(R9), 48u);
    EXPECT_EQ(cpu.reg(R11), static_cast<std::uint32_t>(-2));
}

TEST(Cpu, DivisionByZeroFollowsRiscvConvention)
{
    Assembler a("div0");
    a.movi(R1, 77).movi(R2, 0);
    a.divu(R3, R1, R2); // all ones
    a.remu(R4, R1, R2); // dividend
    const auto prog = assembleAndRun(a);
    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    runToHalt(cpu);
    EXPECT_EQ(cpu.reg(R3), UINT32_MAX);
    EXPECT_EQ(cpu.reg(R4), 77u);
}

TEST(Cpu, LoadStoreWidths)
{
    Assembler a("mem");
    a.movi(R1, 0x11223344);
    a.movi(R2, 16);
    a.stw(R1, R2, 0);
    a.ldb(R3, R2, 0);  // 0x44
    a.ldh(R4, R2, 0);  // 0x3344
    a.ldw(R5, R2, 0);  // whole word
    a.movi(R6, 0xAB);
    a.stb(R6, R2, 1);  // patch byte 1
    a.ldw(R7, R2, 0);  // 0x1122AB44
    const auto prog = assembleAndRun(a);
    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    runToHalt(cpu);
    EXPECT_EQ(cpu.reg(R3), 0x44u);
    EXPECT_EQ(cpu.reg(R4), 0x3344u);
    EXPECT_EQ(cpu.reg(R5), 0x11223344u);
    EXPECT_EQ(cpu.reg(R7), 0x1122AB44u);
}

TEST(Cpu, CallAndReturnViaLinkRegister)
{
    Assembler a("call");
    a.movi(R1, 5);
    a.call("double_it");
    a.mov(R3, R2);
    a.b("end");
    a.label("double_it");
    a.add(R2, R1, R1);
    a.ret();
    a.label("end");
    const auto prog = assembleAndRun(a);
    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    runToHalt(cpu);
    EXPECT_EQ(cpu.reg(R3), 10u);
}

TEST(Cpu, BranchConditionsSignedAndUnsigned)
{
    Assembler a("branches");
    a.movi(R1, -1); // 0xFFFFFFFF
    a.movi(R2, 1);
    a.movi(R3, 0).movi(R4, 0);
    a.blt(R1, R2, "signed_taken");
    a.b("check_unsigned");
    a.label("signed_taken");
    a.movi(R3, 1);
    a.label("check_unsigned");
    a.bltu(R1, R2, "unsigned_taken"); // 0xFFFFFFFF not < 1 unsigned
    a.b("end");
    a.label("unsigned_taken");
    a.movi(R4, 1);
    a.label("end");
    const auto prog = assembleAndRun(a);
    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    runToHalt(cpu);
    EXPECT_EQ(cpu.reg(R3), 1u) << "-1 < 1 signed";
    EXPECT_EQ(cpu.reg(R4), 0u) << "0xFFFFFFFF >= 1 unsigned";
}

TEST(Cpu, MemoryInstructionsCostMore)
{
    Assembler a("cost");
    a.movi(R1, 16);
    a.stw(R1, R1, 0);
    const auto prog = assembleAndRun(a);
    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    cpu.reset();
    const auto movi_step = cpu.step();
    const auto store_step = cpu.step();
    EXPECT_GT(store_step.energy / static_cast<double>(store_step.cycles),
              movi_step.energy / static_cast<double>(movi_step.cycles));
    EXPECT_TRUE(store_step.isMem);
    EXPECT_TRUE(store_step.memIsStore);
    EXPECT_EQ(store_step.memAddr, 16u);
}

TEST(Cpu, NvmAccessAddsEnergy)
{
    Assembler a("nvcost");
    a.movi(R1, 16);   // SRAM address
    a.movi(R2, 1024); // NVM address (SRAM is 256)
    a.stw(R1, R1, 0);
    a.stw(R1, R2, 0);
    const auto prog = assembleAndRun(a);
    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    cpu.reset();
    cpu.step();
    cpu.step();
    const auto sram_store = cpu.step();
    const auto nvm_store = cpu.step();
    EXPECT_FALSE(sram_store.memNonvolatile);
    EXPECT_TRUE(nvm_store.memNonvolatile);
    EXPECT_GT(nvm_store.energy, sram_store.energy);
}

TEST(Cpu, PeekPredictsNextMemoryAccess)
{
    Assembler a("peek");
    a.movi(R1, 2000);
    a.stw(R1, R1, 8);
    const auto prog = assembleAndRun(a);
    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    cpu.reset();
    EXPECT_FALSE(cpu.peek().isMem);
    cpu.step();
    const auto p = cpu.peek();
    EXPECT_TRUE(p.isMem);
    EXPECT_TRUE(p.isStore);
    EXPECT_EQ(p.addr, 2008u);
    EXPECT_EQ(p.bytes, 4u);
    EXPECT_TRUE(p.nonvolatile);
}

TEST(Cpu, ArchStateRoundTripsThroughSaveLoad)
{
    Assembler a("state");
    a.movi(R1, 123).movi(R2, 456);
    const auto prog = assembleAndRun(a);
    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    cpu.reset();
    cpu.step();
    cpu.step();
    std::uint8_t snapshot[Cpu::archStateBytes];
    cpu.saveArchState(snapshot);

    cpu.powerFail();
    cpu.loadArchState(snapshot);
    EXPECT_EQ(cpu.reg(R1), 123u);
    EXPECT_EQ(cpu.reg(R2), 456u);
    EXPECT_EQ(cpu.pc(), 2u);
}

TEST(Cpu, SteppingAfterPowerFailureWithoutRestorePanics)
{
    Assembler a("panic");
    a.movi(R1, 1);
    const auto prog = assembleAndRun(a);
    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    cpu.reset();
    cpu.powerFail();
    EXPECT_THROW(cpu.step(), PanicError);
}

TEST(Cpu, SteppingWhenHaltedPanics)
{
    Assembler a("halted");
    const auto prog = assembleAndRun(a);
    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    cpu.reset();
    cpu.step();
    ASSERT_TRUE(cpu.halted());
    EXPECT_THROW(cpu.step(), PanicError);
}

TEST(Cpu, SensorIsDeterministicAndTenBit)
{
    for (std::uint32_t i = 0; i < 2000; ++i) {
        const auto v = Cpu::sensorValue(i);
        EXPECT_EQ(v, Cpu::sensorValue(i));
        EXPECT_LE(v, 1023u);
    }
    // The wave actually moves.
    EXPECT_NE(Cpu::sensorValue(0), Cpu::sensorValue(64));
}

TEST(Cpu, CheckpointOpSignalsRuntime)
{
    Assembler a("ckpt");
    a.checkpoint();
    const auto prog = assembleAndRun(a);
    auto mem = smallMem();
    Cpu cpu(prog, mem, CostModel::msp430());
    cpu.reset();
    const auto step = cpu.step();
    EXPECT_TRUE(step.checkpointRequested);
    EXPECT_FALSE(cpu.halted());
}

TEST(Disassembler, RendersRepresentativeInstructions)
{
    using arch::Instruction;
    EXPECT_EQ(arch::disassemble(
                  Instruction{Opcode::Add, 3, 1, 2, 0}),
              "add r3, r1, r2");
    EXPECT_EQ(arch::disassemble(
                  Instruction{Opcode::AddI, 3, 1, 0, 42}),
              "addi r3, r1, 42");
    EXPECT_EQ(arch::disassemble(
                  Instruction{Opcode::MovI, 5, 0, 0, -7}),
              "movi r5, -7");
    EXPECT_EQ(arch::disassemble(
                  Instruction{Opcode::Ldw, 4, 2, 0, 16}),
              "ldw r4, [r2 + 16]");
    EXPECT_EQ(arch::disassemble(
                  Instruction{Opcode::Stb, 0, 2, 7, -4}),
              "stb r7, [r2 + -4]");
    EXPECT_EQ(arch::disassemble(
                  Instruction{Opcode::Bne, 0, 1, 2, 12}),
              "bne r1, r2 -> 12");
    EXPECT_EQ(arch::disassemble(Instruction{Opcode::B, 0, 0, 0, 3}),
              "b -> 3");
    EXPECT_EQ(arch::disassemble(Instruction{Opcode::Halt, 0, 0, 0, 0}),
              "halt");
    EXPECT_EQ(arch::disassemble(
                  Instruction{Opcode::Checkpoint, 0, 0, 0, 0}),
              "checkpoint");
}

TEST(Disassembler, ListsWholeProgramsWithImages)
{
    Assembler a("listing");
    a.movi(R1, 5).label("top").subi(R1, R1, 1).bne(R1, R0, "top").halt();
    a.initWords(100, {1, 2});
    const auto text = arch::disassemble(a.assemble());
    EXPECT_NE(text.find("program 'listing', 4 instructions"),
              std::string::npos);
    EXPECT_NE(text.find("0:\tmovi r1, 5"), std::string::npos);
    EXPECT_NE(text.find("2:\tbne r1, r0 -> 1"), std::string::npos);
    EXPECT_NE(text.find("8 bytes at address 100"), std::string::npos);
}

TEST(Disassembler, EveryInstructionMentionsItsMnemonic)
{
    // Every opcode the ISA declares must disassemble without panicking
    // and lead with its mnemonic.
    for (int op = 0; op <= static_cast<int>(Opcode::Halt); ++op) {
        Instruction in{static_cast<Opcode>(op), 1, 2, 3, 4};
        const auto text = arch::disassemble(in);
        EXPECT_EQ(text.rfind(opcodeName(in.op), 0), 0u) << text;
    }
}

TEST(Tracker, DetectsWarViolation)
{
    IdempotencyTracker t(8, 8, 100000);
    EXPECT_EQ(t.onLoad(100, 4), BackupTrigger::None);
    EXPECT_EQ(t.onStore(100, 4), BackupTrigger::Violation);
    EXPECT_EQ(t.stats().violations, 1u);
}

TEST(Tracker, WriteFirstSuppressesViolation)
{
    IdempotencyTracker t(8, 8, 100000);
    EXPECT_EQ(t.onStore(100, 4), BackupTrigger::None);
    EXPECT_EQ(t.onLoad(100, 4), BackupTrigger::None);
    EXPECT_EQ(t.onStore(100, 4), BackupTrigger::None)
        << "rewriting own data is idempotent";
}

TEST(Tracker, SubWordStoreDoesNotClaimWholeWord)
{
    // A byte store must NOT mark the word write-first: the other bytes
    // were not written, so reading them is still read-first and a later
    // full-word store must violate.
    IdempotencyTracker t(8, 8, 100000);
    EXPECT_EQ(t.onStore(100, 1), BackupTrigger::None);
    EXPECT_EQ(t.onLoad(100, 4), BackupTrigger::None); // enters read-first
    EXPECT_EQ(t.onStore(100, 4), BackupTrigger::Violation);
}

TEST(Tracker, ReadBufferOverflowForcesBackup)
{
    IdempotencyTracker t(4, 8, 100000);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(t.onLoad(i * 4, 4), BackupTrigger::None);
    EXPECT_EQ(t.onLoad(100, 4), BackupTrigger::BufferOverflow);
    EXPECT_EQ(t.stats().overflows, 1u);
}

TEST(Tracker, WriteBufferOverflowForcesBackup)
{
    IdempotencyTracker t(8, 2, 100000);
    EXPECT_EQ(t.onStore(0, 4), BackupTrigger::None);
    EXPECT_EQ(t.onStore(8, 4), BackupTrigger::None);
    EXPECT_EQ(t.onStore(16, 4), BackupTrigger::BufferOverflow);
}

TEST(Tracker, WatchdogFiresAfterPeriod)
{
    IdempotencyTracker t(8, 8, 1000);
    EXPECT_EQ(t.tick(999), BackupTrigger::None);
    EXPECT_EQ(t.tick(1), BackupTrigger::Watchdog);
    EXPECT_EQ(t.stats().watchdogFirings, 1u);
}

TEST(Tracker, ResetClearsEverythingButStats)
{
    IdempotencyTracker t(8, 8, 1000);
    t.onLoad(100, 4);
    t.tick(500);
    t.reset();
    EXPECT_EQ(t.cyclesSinceBackup(), 0u);
    EXPECT_EQ(t.onStore(100, 4), BackupTrigger::None)
        << "read-first buffer must be empty after reset";
}

TEST(Tracker, RepeatedLoadsDoNotOverflow)
{
    IdempotencyTracker t(2, 8, 100000);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(t.onLoad(64, 4), BackupTrigger::None);
}

TEST(Tracker, MultiWordAccessTracksEveryWord)
{
    IdempotencyTracker t(8, 8, 100000);
    EXPECT_EQ(t.onLoad(100, 8), BackupTrigger::None); // words 25 and 26
    EXPECT_EQ(t.onStore(104, 4), BackupTrigger::Violation);
}

} // namespace
