/**
 * @file
 * Tests for the energy-harvesting substrate: voltage traces (including
 * the three paper trace shapes), the transducer, the capacitor's
 * threshold dynamics, both supplies, and the per-phase energy meter's
 * commit/discard semantics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "energy/capacitor.hh"
#include "energy/meter.hh"
#include "energy/supply.hh"
#include "energy/trace.hh"
#include "energy/transducer.hh"
#include "util/panic.hh"
#include "util/random.hh"

namespace {

using namespace eh;
using namespace eh::energy;

TEST(Trace, InterpolatesBetweenSamples)
{
    VoltageTrace t({0.0, 2.0}, 100, "test");
    EXPECT_DOUBLE_EQ(t.voltageAt(0), 0.0);
    EXPECT_DOUBLE_EQ(t.voltageAt(50), 1.0);
    EXPECT_DOUBLE_EQ(t.voltageAt(25), 0.5);
}

TEST(Trace, LoopsPastTheEnd)
{
    VoltageTrace t({1.0, 3.0}, 10, "test");
    EXPECT_DOUBLE_EQ(t.voltageAt(0), t.voltageAt(t.lengthCycles()));
    EXPECT_DOUBLE_EQ(t.voltageAt(7), t.voltageAt(7 + 2 * t.lengthCycles()));
}

TEST(Trace, LastSegmentInterpolatesTowardsFirstSample)
{
    VoltageTrace t({0.0, 4.0}, 10, "test");
    // Cycle 15 sits halfway between sample 1 (4.0) and the wrap to
    // sample 0 (0.0).
    EXPECT_DOUBLE_EQ(t.voltageAt(15), 2.0);
}

TEST(Trace, RejectsBadConstruction)
{
    EXPECT_THROW(VoltageTrace({}, 10, "x"), FatalError);
    EXPECT_THROW(VoltageTrace({1.0}, 0, "x"), FatalError);
    EXPECT_THROW(VoltageTrace({-0.5}, 10, "x"), FatalError);
}

TEST(Trace, SpikyShapeMatchesPaperDescription)
{
    // Two short spikes above 5 V, troughs near 0 V (Section V-B).
    const auto t = makeSpikyTrace(Rng(7), 1'000'000);
    EXPECT_GT(t.peakVoltage(), 5.0);
    EXPECT_LT(t.troughVoltage(), 0.2);
    EXPECT_LT(t.meanVoltage(), 1.5) << "spikes must be short";
}

TEST(Trace, RampShapeMatchesPaperDescription)
{
    const auto t = makeRampTrace(Rng(7), 1'000'000);
    EXPECT_LT(t.samples().front(), 0.2);
    EXPECT_NEAR(t.peakVoltage(), 2.5, 0.3);
    // Monotone on average: the last quarter clearly exceeds the first.
    const auto &s = t.samples();
    double head = 0.0, tail = 0.0;
    const std::size_t q = s.size() / 4;
    for (std::size_t i = 0; i < q; ++i) {
        head += s[i];
        tail += s[s.size() - 1 - i];
    }
    EXPECT_GT(tail, head * 3.0);
}

TEST(Trace, MultiPeakShapeMatchesPaperDescription)
{
    const auto t = makeMultiPeakTrace(Rng(7), 1'000'000);
    EXPECT_GE(t.peakVoltage(), 3.5);
    EXPECT_LE(t.peakVoltage(), 5.7);
    EXPECT_LE(t.troughVoltage(), 1.5);
}

TEST(Trace, PaperTracesAreDeterministicPerSeed)
{
    const auto a = makePaperTraces(42, 200000);
    const auto b = makePaperTraces(42, 200000);
    ASSERT_EQ(a.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(a[i].samples(), b[i].samples()) << i;
    const auto c = makePaperTraces(43, 200000);
    EXPECT_NE(a[0].samples(), c[0].samples());
}

TEST(Trace, CsvRoundTrip)
{
    const std::string path = "/tmp/eh_trace_roundtrip.csv";
    const auto original = makeMultiPeakTrace(Rng(3), 50000, 500);
    saveTraceCsv(original, path);
    const auto loaded = loadTraceCsv(path, "reloaded");
    EXPECT_EQ(loaded.samples(), original.samples());
    EXPECT_EQ(loaded.cyclesPerSample(), original.cyclesPerSample());
    EXPECT_EQ(loaded.name(), "reloaded");
    std::remove(path.c_str());
}

TEST(Trace, CsvLoadRejectsMalformedFiles)
{
    const std::string path = "/tmp/eh_trace_bad.csv";
    auto write = [&](const char *content) {
        std::ofstream out(path);
        out << content;
    };
    write("volts\n1\n");
    EXPECT_THROW(loadTraceCsv(path), FatalError);
    write("cycle,volts\n");
    EXPECT_THROW(loadTraceCsv(path), FatalError);
    write("cycle,volts\n0,1.0\n10,2.0\n15,3.0\n"); // uneven pitch
    EXPECT_THROW(loadTraceCsv(path), FatalError);
    write("cycle,volts\nnot,numbers\n");
    EXPECT_THROW(loadTraceCsv(path), FatalError);
    EXPECT_THROW(loadTraceCsv("/no/such/file.csv"), FatalError);
    std::remove(path.c_str());
}

TEST(Trace, CsvLoadRejectsGarbageValuesWithLineNumbers)
{
    const std::string path = "/tmp/eh_trace_garbage.csv";
    auto write = [&](const char *content) {
        std::ofstream out(path);
        out << content;
    };
    auto expectFatalMentioning = [&](const std::string &needle) {
        try {
            loadTraceCsv(path);
            ADD_FAILURE() << "expected FatalError mentioning '" << needle
                          << "'";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << "diagnostic was: " << e.what();
        }
    };

    write("cycle,volts\n0,1.0\n10,nan\n");
    expectFatalMentioning("non-finite voltage at line 3");
    write("cycle,volts\n0,inf\n");
    expectFatalMentioning("non-finite voltage at line 2");
    write("cycle,volts\n0,1.0\n10,-0.5\n");
    expectFatalMentioning("negative voltage at line 3");
    write("cycle,volts\n0,1.0\n10,2.0\n5,1.5\n");
    expectFatalMentioning("non-monotonic cycle at line 4");
    write("cycle,volts\n0,1.0\n0,2.0\n"); // duplicate cycle stamp
    expectFatalMentioning("non-monotonic cycle at line 3");
    write("cycle,volts\n\n\n"); // blank rows only: no samples
    expectFatalMentioning("contains no samples");
    std::remove(path.c_str());
}

TEST(Trace, CsvLoadAcceptsSingleSample)
{
    const std::string path = "/tmp/eh_trace_single.csv";
    {
        std::ofstream out(path);
        out << "cycle,volts\n0,2.5\n";
    }
    const auto t = loadTraceCsv(path);
    EXPECT_DOUBLE_EQ(t.voltageAt(12345), 2.5);
    std::remove(path.c_str());
}

TEST(Transducer, QuadraticInVoltage)
{
    Transducer t(0.5, 50.0, 16.0e6);
    EXPECT_DOUBLE_EQ(t.energyPerCycle(0.0), 0.0);
    EXPECT_NEAR(t.energyPerCycle(2.0), 4.0 * t.energyPerCycle(1.0),
                1e-12);
}

TEST(Transducer, ConcreteValue)
{
    // eta=1, R=1 Ohm, 1 Hz, pJ scale: 2 V -> 4 W -> 4e12 pJ per cycle.
    Transducer t(1.0, 1.0, 1.0);
    EXPECT_NEAR(t.energyPerCycle(2.0), 4.0e12, 1.0);
}

TEST(Transducer, RejectsBadConfig)
{
    EXPECT_THROW(Transducer(0.0, 50.0, 1e6), FatalError);
    EXPECT_THROW(Transducer(1.5, 50.0, 1e6), FatalError);
    EXPECT_THROW(Transducer(0.5, 0.0, 1e6), FatalError);
    EXPECT_THROW(Transducer(0.5, 50.0, 0.0), FatalError);
}

TEST(Capacitor, EnergyVoltageRoundTrip)
{
    Capacitor c(100e-6, 5.0, 3.0, 1.8);
    c.charge(0.5 * 100e-6 * 4.0 * 4.0 * 1e12); // energy at 4 V
    EXPECT_NEAR(c.voltage(), 4.0, 1e-9);
}

TEST(Capacitor, ThresholdsGateOnAndOff)
{
    Capacitor c(100e-6, 5.0, 3.0, 1.8);
    EXPECT_FALSE(c.canTurnOn());
    c.charge(0.5 * 100e-6 * 9.0 * 1e12); // exactly 3 V
    EXPECT_TRUE(c.canTurnOn());
    EXPECT_TRUE(c.alive());
    // Draw down to below 1.8 V.
    c.draw(c.storedEnergy() - 0.5 * 100e-6 * 1.7 * 1.7 * 1e12);
    EXPECT_FALSE(c.alive());
}

TEST(Capacitor, ChargeClampsAtVmax)
{
    Capacitor c(100e-6, 5.0, 3.0, 1.8);
    c.charge(1e20);
    EXPECT_NEAR(c.voltage(), 5.0, 1e-9);
    EXPECT_DOUBLE_EQ(c.storedEnergy(), c.capacityEnergy());
}

TEST(Capacitor, DrawBeyondStoredFailsAndEmpties)
{
    Capacitor c(100e-6, 5.0, 3.0, 1.8);
    c.charge(1000.0);
    EXPECT_FALSE(c.draw(2000.0));
    EXPECT_DOUBLE_EQ(c.storedEnergy(), 0.0);
}

TEST(Capacitor, UsableBudgetIsOnOffWindow)
{
    Capacitor c(100e-6, 5.0, 3.0, 1.8);
    const double expected =
        0.5 * 100e-6 * (3.0 * 3.0 - 1.8 * 1.8) * 1e12;
    EXPECT_NEAR(c.usableBudget(), expected, 1e-3);
}

TEST(Capacitor, RejectsBadThresholds)
{
    EXPECT_THROW(Capacitor(0.0, 5.0, 3.0, 1.8), FatalError);
    EXPECT_THROW(Capacitor(1e-6, 5.0, 1.8, 3.0), FatalError);
    EXPECT_THROW(Capacitor(1e-6, 5.0, 6.0, 1.8), FatalError);
}

TEST(ConstantSupply, RefillsEveryPeriod)
{
    ConstantSupply s(1000.0);
    EXPECT_EQ(s.chargeUntilReady(100), 0u);
    EXPECT_TRUE(s.consume(600.0));
    EXPECT_FALSE(s.consume(600.0)); // brown-out
    EXPECT_DOUBLE_EQ(s.storedEnergy(), 0.0);
    EXPECT_EQ(s.chargeUntilReady(100), 0u);
    EXPECT_DOUBLE_EQ(s.storedEnergy(), 1000.0);
    EXPECT_DOUBLE_EQ(s.periodBudget(), 1000.0);
    EXPECT_DOUBLE_EQ(s.chargeRatePerCycle(), 0.0);
}

TEST(HarvestingSupply, ChargesThenBrownsOut)
{
    // Constant 2 V source, eta 1, 1 Ohm, 1 MHz, pJ: 4e6 pJ/cycle.
    Transducer tx(1.0, 1.0, 1.0e6);
    Capacitor cap(100e-6, 5.0, 3.0, 1.8);
    HarvestingSupply s(makeConstantTrace(2.0, 1'000'000), tx, cap);

    const auto cycles = s.chargeUntilReady(1'000'000);
    ASSERT_NE(cycles, chargeFailed);
    EXPECT_GT(cycles, 0u);
    // Roughly usable-at-3V / per-cycle-harvest cycles of charging.
    const double at3v = 0.5 * 100e-6 * 9.0 * 1e12;
    EXPECT_NEAR(static_cast<double>(cycles), at3v / 4.0e6,
                at3v / 4.0e6 * 0.01 + 2);

    // Consume faster than harvest until brown-out.
    bool died = false;
    for (int i = 0; i < 10'000'000 && !died; ++i)
        died = !s.consume(8.0e6);
    EXPECT_TRUE(died);
}

TEST(HarvestingSupply, ChargeFailsOnDeadSource)
{
    Transducer tx(1.0, 1.0, 1.0e6);
    Capacitor cap(100e-6, 5.0, 3.0, 1.8);
    HarvestingSupply s(makeConstantTrace(0.0, 1000), tx, cap);
    EXPECT_EQ(s.chargeUntilReady(10000), chargeFailed);
}

TEST(HarvestingSupply, TracksChargeRateDuringActiveCycles)
{
    Transducer tx(1.0, 1.0, 1.0e6);
    Capacitor cap(100e-6, 5.0, 3.0, 1.8);
    HarvestingSupply s(makeConstantTrace(1.0, 100000), tx, cap);
    ASSERT_NE(s.chargeUntilReady(100'000'000), chargeFailed);
    s.consume(100.0, 10);
    EXPECT_NEAR(s.chargeRatePerCycle(), 1.0e6, 1.0); // 1 V -> 1e6 pJ/cyc
}

TEST(HarvestingSupply, HibernateForfeitsCharge)
{
    Transducer tx(1.0, 1.0, 1.0e6);
    Capacitor cap(100e-6, 5.0, 3.0, 1.8);
    HarvestingSupply s(makeConstantTrace(2.0, 100000), tx, cap);
    ASSERT_NE(s.chargeUntilReady(100'000'000), chargeFailed);
    EXPECT_GT(s.storedEnergy(), 0.0);
    s.hibernate();
    EXPECT_DOUBLE_EQ(s.storedEnergy(), 0.0);
}

TEST(Meter, CommitMovesUncommittedToProgress)
{
    EnergyMeter m;
    m.addUncommitted(10, 100.0);
    EXPECT_EQ(m.cycles(Phase::Progress), 0u);
    m.commit();
    EXPECT_EQ(m.cycles(Phase::Progress), 10u);
    EXPECT_DOUBLE_EQ(m.energy(Phase::Progress), 100.0);
    EXPECT_EQ(m.uncommittedCycles(), 0u);
}

TEST(Meter, DiscardMovesUncommittedToDead)
{
    EnergyMeter m;
    m.addUncommitted(7, 70.0);
    m.discard();
    EXPECT_EQ(m.cycles(Phase::Dead), 7u);
    EXPECT_DOUBLE_EQ(m.energy(Phase::Dead), 70.0);
    EXPECT_EQ(m.cycles(Phase::Progress), 0u);
}

TEST(Meter, SharesSumToOne)
{
    EnergyMeter m;
    m.add(Phase::Progress, 10, 50.0);
    m.add(Phase::Backup, 5, 30.0);
    m.add(Phase::Restore, 2, 15.0);
    m.add(Phase::Dead, 1, 5.0);
    double total = 0.0;
    for (auto ph : {Phase::Progress, Phase::Backup, Phase::Restore,
                    Phase::Dead, Phase::Monitor})
        total += m.energyShare(ph);
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_NEAR(m.energyShare(Phase::Progress), 0.5, 1e-12);
}

TEST(Meter, ClearResetsEverything)
{
    EnergyMeter m;
    m.add(Phase::Backup, 5, 30.0);
    m.addUncommitted(2, 10.0);
    m.clear();
    EXPECT_EQ(m.totalCycles(), 0u);
    EXPECT_DOUBLE_EQ(m.totalEnergy(), 0.0);
    EXPECT_EQ(m.uncommittedCycles(), 0u);
}

TEST(Meter, ReportNamesEveryPhase)
{
    EnergyMeter m;
    const auto text = m.report();
    for (const char *name :
         {"progress", "backup", "restore", "dead", "monitor"})
        EXPECT_NE(text.find(name), std::string::npos) << name;
}

} // namespace
