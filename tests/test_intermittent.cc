/**
 * @file
 * End-to-end intermittent-execution correctness: every workload, run
 * under every compatible backup policy with an energy budget small enough
 * to force many power failures, must still produce exactly its reference
 * results. This exercises the full stack — CPU, policies, double-buffered
 * checkpoints, restores, re-execution — including the consistency
 * hazards (mid-backup failure, dying stores) the machinery exists for.
 *
 * Policy/placement pairing follows the platforms the paper models:
 * volatile-data policies (Mementos, DINO, Hibernus, Watchdog) run the
 * SRAM placement; nonvolatile-data policies (Clank, NVP) run the FRAM
 * placement.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "runtime/clank.hh"
#include "runtime/dino.hh"
#include "runtime/hibernus.hh"
#include "runtime/mementos.hh"
#include "runtime/nvp.hh"
#include "runtime/ratchet.hh"
#include "runtime/watchdog.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace {

using namespace eh;

struct Combo
{
    std::string workload;
    std::string policy;
};

std::vector<Combo>
allCombos()
{
    std::vector<std::string> names = workloads::tableIINames();
    for (const auto &n : workloads::mibenchNames())
        names.push_back(n);
    std::vector<Combo> combos;
    for (const auto &w : names)
        for (const auto &p : {"mementos", "dino", "hibernus", "watchdog",
                              "clank", "nvp", "ratchet"})
            combos.push_back({w, p});
    return combos;
}

bool
isVolatilePolicy(const std::string &p)
{
    return p == "mementos" || p == "dino" || p == "hibernus" ||
           p == "watchdog";
}

std::unique_ptr<runtime::BackupPolicy>
makePolicy(const std::string &name, std::size_t sram_used,
           double budget = 0.0)
{
    if (name == "mementos") {
        runtime::MementosConfig c;
        c.sramUsedBytes = sram_used;
        c.backupThreshold = 0.5;
        return std::make_unique<runtime::Mementos>(c);
    }
    if (name == "dino") {
        runtime::DinoConfig c;
        c.sramUsedBytes = sram_used;
        return std::make_unique<runtime::Dino>(c);
    }
    if (name == "hibernus") {
        runtime::HibernusConfig c;
        c.sramUsedBytes = sram_used;
        // Real Hibernus derives its backup threshold from the energy
        // the single backup needs; with too low a threshold the backup
        // itself browns out every period.
        const double backup_energy =
            (static_cast<double>(sram_used) + 68.0) * 75.0;
        c.backupThreshold = std::clamp(
            budget > 0.0 ? 2.0 * backup_energy / budget : 0.15, 0.15,
            0.85);
        return std::make_unique<runtime::Hibernus>(c);
    }
    if (name == "watchdog") {
        runtime::WatchdogConfig c;
        c.sramUsedBytes = sram_used;
        c.periodCycles = 2500;
        return std::make_unique<runtime::Watchdog>(c);
    }
    if (name == "clank")
        return std::make_unique<runtime::Clank>(runtime::ClankConfig{});
    if (name == "ratchet")
        return std::make_unique<runtime::Ratchet>(
            runtime::RatchetConfig{.maxSectionCycles = 4000,
                                   .archBytes = 80});
    if (name == "nvp") {
        runtime::NvpConfig c;
        c.backupEveryInstructions = 1;
        return std::make_unique<runtime::Nvp>(c);
    }
    ADD_FAILURE() << "unknown policy " << name;
    return nullptr;
}

class IntermittentCorrectness : public ::testing::TestWithParam<Combo>
{
};

TEST_P(IntermittentCorrectness, ResultsSurvivePowerFailures)
{
    const auto &[wname, pname] = GetParam();
    const bool vol = isVolatilePolicy(pname);
    const auto layout = vol ? workloads::volatileLayout()
                            : workloads::nonvolatileLayout();
    const auto w = workloads::makeWorkload(wname, layout);

    sim::SimConfig cfg;
    cfg.sramUsedBytes = vol ? w.sramUsedBytes : 64;
    cfg.maxActivePeriods = 30000;

    // Size the budget from the uninterrupted run so every combination
    // needs several active periods: restore + one payload backup must
    // fit, but the whole program must not.
    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    // The nonvolatile floor must exceed the longest backup-free
    // stretch any policy allows (Ratchet/Clank watchdogs: 8000 cycles).
    const double floor_budget = vol ? 2.0e6 : 1.0e6;
    const double budget = std::max(floor_budget, golden.energy / 6.0);
    energy::ConstantSupply supply(budget);
    auto policy = makePolicy(pname, cfg.sramUsedBytes, budget);
    ASSERT_NE(policy, nullptr);

    sim::Simulator simulator(w.program, *policy, supply, cfg);
    const auto stats = simulator.run();

    ASSERT_TRUE(stats.finished)
        << w.name << "/" << pname << " did not finish: "
        << stats.summary();
    if (pname == "hibernus") {
        // Hibernus hibernates *before* power fails — the absence of
        // brown-outs is its design goal; multiple periods still prove
        // the run was interrupted and resumed.
        EXPECT_GT(stats.periods, 1u) << w.name << "/" << pname;
    } else {
        EXPECT_GT(stats.powerFailures, 0u)
            << w.name << "/" << pname
            << " must actually experience power failures for this test "
               "to mean anything";
    }
    for (std::size_t i = 0; i < w.resultAddrs.size(); ++i) {
        EXPECT_EQ(simulator.resultWord(w.resultAddrs[i]), w.expected[i])
            << "result word " << i << " of " << w.name << " under "
            << pname;
    }
    EXPECT_GT(stats.backups, 0u);
    EXPECT_GT(stats.periods, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, IntermittentCorrectness,
    ::testing::ValuesIn(allCombos()),
    [](const ::testing::TestParamInfo<Combo> &info) {
        return info.param.workload + "_" + info.param.policy;
    });

} // namespace
