/**
 * @file
 * Tests for the library extensions beyond the paper's core equations:
 * monitoring-aware single-backup analysis (Section IV-B's "up to 40%"
 * remark), wall-clock throughput/completion estimation, speculation
 * headroom (the Spendthrift bound of Section IV-A2), and the adaptive
 * Hibernus++ policy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hh"
#include "core/monitoring.hh"
#include "core/optimum.hh"
#include "core/params.hh"
#include "core/throughput.hh"
#include "energy/supply.hh"
#include "runtime/hibernus.hh"
#include "runtime/hibernus_pp.hh"
#include "sim/simulator.hh"
#include "util/panic.hh"
#include "workloads/workload.hh"

namespace {

using namespace eh;
using core::MonitorConfig;
using core::Params;

TEST(Monitoring, ZeroCostMatchesEquation12)
{
    Params p = core::illustrativeParams();
    p.restoreCost = 0.3;
    p.archStateRestore = 2.0;
    MonitorConfig m{64.0, 0.0};
    EXPECT_NEAR(core::singleBackupProgressWithMonitoring(p, m),
                core::Model(p).singleBackupProgress(), 1e-12);
    EXPECT_DOUBLE_EQ(core::monitoringOverheadShare(p, m), 0.0);
}

TEST(Monitoring, DenserCheckingCostsMoreProgress)
{
    Params p = core::illustrativeParams();
    double last = 0.0;
    for (double period : {4.0, 16.0, 64.0, 256.0}) {
        const double prog = core::singleBackupProgressWithMonitoring(
            p, {period, 2.0});
        EXPECT_GT(prog, last);
        last = prog;
    }
}

TEST(Monitoring, AggressiveAdcCanReachTheFortyPercentRegime)
{
    // Section IV-B notes monitoring overheads of up to ~40%; with a
    // check as expensive as 2 cycles of execution taken every 3 cycles,
    // the share lands in that regime.
    Params p = core::illustrativeParams();
    const double share = core::monitoringOverheadShare(p, {3.0, 2.0});
    EXPECT_GT(share, 0.3);
    EXPECT_LT(share, 0.5);
}

TEST(Monitoring, OverheadAndProgressAreConsistent)
{
    // Monitoring share + progress share cannot exceed the budget.
    Params p = core::illustrativeParams();
    p.restoreCost = 0.3;
    p.archStateRestore = 2.0;
    for (double energy : {0.0, 0.5, 2.0, 8.0}) {
        MonitorConfig m{32.0, energy};
        const double prog =
            core::singleBackupProgressWithMonitoring(p, m);
        const double share = core::monitoringOverheadShare(p, m);
        EXPECT_LE(prog + share, 1.0 + 1e-9) << energy;
    }
}

TEST(Monitoring, RejectsBadConfig)
{
    const Params p = core::illustrativeParams();
    EXPECT_THROW(core::singleBackupProgressWithMonitoring(p, {0.0, 1.0}),
                 FatalError);
    EXPECT_THROW(core::singleBackupProgressWithMonitoring(p, {8.0, -1.0}),
                 FatalError);
    EXPECT_THROW(core::maxSafeMonitorPeriod(p, 0.0), FatalError);
    EXPECT_THROW(core::maxSafeMonitorPeriod(p, 1.0), FatalError);
}

TEST(Monitoring, SafePeriodScalesWithReserve)
{
    const Params p = core::illustrativeParams();
    EXPECT_GT(core::maxSafeMonitorPeriod(p, 0.2),
              core::maxSafeMonitorPeriod(p, 0.1));
}

TEST(Throughput, CompletionArithmeticIsConsistent)
{
    Params p = core::illustrativeParams();
    p.backupPeriod = core::optimalBackupPeriod(p);
    const auto est = core::estimateCompletion(p, 1e6, 0.05);
    EXPECT_GT(est.progressPerPeriod, 0.0);
    EXPECT_NEAR(est.periods, 1e6 / est.progressPerPeriod, 1e-9);
    EXPECT_NEAR(est.totalCycles,
                est.periods * (est.activePerPeriod + est.chargePerPeriod),
                1e-6 * est.totalCycles);
    EXPECT_NEAR(est.throughput, 1e6 / est.totalCycles, 1e-12);
    EXPECT_GT(est.activeDutyCycle, 0.0);
    EXPECT_LT(est.activeDutyCycle, 1.0);
}

TEST(Throughput, FasterHarvestShortensCompletion)
{
    Params p = core::illustrativeParams();
    const auto slow = core::estimateCompletion(p, 1e6, 0.01);
    const auto fast = core::estimateCompletion(p, 1e6, 0.1);
    EXPECT_LT(fast.totalCycles, slow.totalCycles);
    EXPECT_GT(fast.activeDutyCycle, slow.activeDutyCycle);
}

TEST(Throughput, InfeasibleConfigurationNeverCompletes)
{
    Params p = core::illustrativeParams();
    p.backupPeriod = 500.0; // dead energy alone exceeds E
    const auto est = core::estimateCompletion(p, 1e6, 0.05);
    EXPECT_TRUE(std::isinf(est.periods));
    EXPECT_DOUBLE_EQ(est.throughput, 0.0);
}

TEST(Throughput, CompletionOptimumMatchesProgressOptimum)
{
    // With a fixed refill budget, minimizing wall-clock time and
    // maximizing per-period progress agree (documented equivalence).
    Params p = core::illustrativeParams();
    const double tau_completion =
        core::completionOptimalBackupPeriod(p, 1e6, 0.05);
    const double tau_progress = core::optimalBackupPeriod(p);
    EXPECT_NEAR(tau_completion, tau_progress, 0.05 * tau_progress);
}

TEST(Throughput, RejectsBadInputs)
{
    const Params p = core::illustrativeParams();
    EXPECT_THROW(core::estimateCompletion(p, 0.0, 0.05), FatalError);
    EXPECT_THROW(core::estimateCompletion(p, 1e6, 0.0), FatalError);
}

TEST(Speculation, HeadroomIsBestMinusAverage)
{
    Params p = core::illustrativeParams();
    p.backupPeriod = 40.0;
    core::Model m(p);
    EXPECT_NEAR(core::speculationHeadroom(p),
                m.progress(core::DeadCycleMode::BestCase) -
                    m.progress(core::DeadCycleMode::Average),
                1e-15);
    EXPECT_GT(core::speculationHeadroom(p), 0.0);
}

TEST(Speculation, HeadroomGrowsWithBackupPeriodAndSaturates)
{
    Params p = core::illustrativeParams();
    auto headroom_at = [&](double tau) {
        Params q = p;
        q.backupPeriod = tau;
        return core::speculationHeadroom(q);
    };
    // Monotone non-decreasing: longer periods leave more for a perfect
    // speculator to save.
    double last = -1.0;
    for (double tau : {1.0, 10.0, 50.0, 200.0, 1000.0, 10000.0}) {
        const double h = headroom_at(tau);
        EXPECT_GE(h + 1e-12, last) << tau;
        last = h;
    }
    // The sweet spot marks the knee: most of the saturated headroom is
    // already available there, and it is far below the search ceiling.
    const double sweet = core::speculationSweetSpot(p);
    ASSERT_GT(sweet, 1.0);
    EXPECT_LT(sweet, 1e6);
    EXPECT_GE(headroom_at(sweet), 0.95 * headroom_at(1e7));
    EXPECT_LT(headroom_at(sweet / 10.0), 0.95 * headroom_at(1e7));
}

TEST(HibernusPP, AdaptsThresholdDownToTheMeasuredCost)
{
    // Run a real workload: the adaptive policy must finish, converge its
    // threshold well below the conservative initial value, and still
    // produce exact results.
    const auto w = workloads::makeWorkload(
        "sense", workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    cfg.maxActivePeriods = 30000;

    runtime::HibernusPPConfig hc;
    hc.sramUsedBytes = cfg.sramUsedBytes;
    hc.initialThreshold = 0.6;
    runtime::HibernusPP policy(hc);

    // Budget: several backup round trips per period.
    const double budget =
        8.0 * (static_cast<double>(cfg.sramUsedBytes) + 68.0) * 75.0;
    energy::ConstantSupply supply(budget);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();

    ASSERT_TRUE(stats.finished) << stats.summary();
    EXPECT_GT(policy.adaptations(), 0u);
    EXPECT_LT(policy.threshold(), 0.5)
        << "threshold should shrink toward the measured backup cost";
    EXPECT_GT(policy.threshold(), 0.05);
    for (std::size_t i = 0; i < w.resultAddrs.size(); ++i)
        EXPECT_EQ(s.resultWord(w.resultAddrs[i]), w.expected[i]);
}

TEST(HibernusPP, BeatsBadlyTunedPlainHibernusOnProgress)
{
    // A plain Hibernus with an over-conservative threshold sleeps too
    // early; the adaptive policy recovers that energy.
    const auto w = workloads::makeWorkload(
        "crc", workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    cfg.maxActivePeriods = 30000;
    const double budget =
        8.0 * (static_cast<double>(cfg.sramUsedBytes) + 68.0) * 75.0;

    runtime::HibernusConfig plain_cfg;
    plain_cfg.sramUsedBytes = cfg.sramUsedBytes;
    plain_cfg.backupThreshold = 0.6; // badly over-tuned
    runtime::Hibernus plain(plain_cfg);
    energy::ConstantSupply supply1(budget);
    sim::Simulator s1(w.program, plain, supply1, cfg);
    const auto plain_stats = s1.run();

    runtime::HibernusPPConfig pp_cfg;
    pp_cfg.sramUsedBytes = cfg.sramUsedBytes;
    pp_cfg.initialThreshold = 0.6; // same bad starting point
    runtime::HibernusPP adaptive(pp_cfg);
    energy::ConstantSupply supply2(budget);
    sim::Simulator s2(w.program, adaptive, supply2, cfg);
    const auto pp_stats = s2.run();

    ASSERT_TRUE(plain_stats.finished);
    ASSERT_TRUE(pp_stats.finished);
    EXPECT_GT(pp_stats.measuredProgress(),
              plain_stats.measuredProgress());
    EXPECT_LT(pp_stats.periods, plain_stats.periods);
}

TEST(HibernusPP, DoublesThresholdAfterAFailedBackup)
{
    runtime::HibernusPPConfig hc;
    hc.initialThreshold = 0.1;
    hc.minThreshold = 0.01;
    runtime::HibernusPP policy(hc);

    // Simulate the trigger-then-brown-out path directly.
    arch::Program prog{
        "noop", {arch::Instruction{arch::Opcode::Nop, 0, 0, 0, 0}}, {}};
    mem::AddressSpace memory(256, 65536, mem::NvmTech::Fram);
    arch::Cpu cpu(prog, memory, arch::CostModel::msp430());
    cpu.reset();
    policy.afterStep(cpu, [] {
        arch::StepResult r;
        r.cycles = 100;
        r.energy = 6500.0;
        return r;
    }());
    const auto d = policy.beforeStep(cpu, {}, {50.0, 1000.0});
    ASSERT_EQ(d.action, runtime::PolicyAction::BackupAndSleep);
    policy.onPowerFail(); // the backup browned out
    EXPECT_NEAR(policy.threshold(), 0.2, 1e-12);
}

TEST(HibernusPP, RejectsBadConfig)
{
    runtime::HibernusPPConfig hc;
    hc.initialThreshold = 1.0;
    EXPECT_THROW(runtime::HibernusPP{hc}, FatalError);
    hc = {};
    hc.safetyMargin = 0.5;
    EXPECT_THROW(runtime::HibernusPP{hc}, FatalError);
    hc = {};
    hc.adaptRate = 0.0;
    EXPECT_THROW(runtime::HibernusPP{hc}, FatalError);
}

} // namespace
