/**
 * @file
 * Tests for the command-line option parser behind eh_explore: flag
 * syntax, numeric conversion, preset selection and Table I overrides.
 */

#include <gtest/gtest.h>

#include "cli/options.hh"
#include "util/panic.hh"

namespace {

using namespace eh;
using cli::Options;

TEST(CliOptions, ParsesSubcommandAndFlags)
{
    const auto o =
        Options::parse({"sweep", "--param", "tauB", "--points", "10"});
    EXPECT_EQ(o.subcommand(), "sweep");
    EXPECT_TRUE(o.has("param"));
    EXPECT_EQ(o.get("param"), "tauB");
    EXPECT_DOUBLE_EQ(o.getDouble("points", 0.0), 10.0);
}

TEST(CliOptions, EmptyAndFlagOnlyInvocations)
{
    EXPECT_EQ(Options::parse({}).subcommand(), "");
    const auto o = Options::parse({"--E", "50"});
    EXPECT_EQ(o.subcommand(), "");
    EXPECT_DOUBLE_EQ(o.getDouble("E", 0.0), 50.0);
}

TEST(CliOptions, FallbacksWhenAbsent)
{
    const auto o = Options::parse({"progress"});
    EXPECT_FALSE(o.has("nope"));
    EXPECT_EQ(o.get("nope", "dflt"), "dflt");
    EXPECT_DOUBLE_EQ(o.getDouble("nope", 3.5), 3.5);
}

TEST(CliOptions, RejectsMalformedInput)
{
    EXPECT_THROW(Options::parse({"cmd", "--flag"}), FatalError);
    EXPECT_THROW(Options::parse({"cmd", "stray"}), FatalError);
    const auto o = Options::parse({"cmd", "--x", "abc"});
    EXPECT_THROW(o.getDouble("x", 0.0), FatalError);
}

TEST(CliOptions, ScientificNotationParses)
{
    const auto o = Options::parse({"cmd", "--E", "2.5e6"});
    EXPECT_DOUBLE_EQ(o.getDouble("E", 0.0), 2.5e6);
}

TEST(CliOptions, TracksUnusedFlags)
{
    const auto o = Options::parse({"cmd", "--used", "1", "--typo", "2"});
    (void)o.getDouble("used", 0.0);
    const auto unused = o.unusedFlags();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo");
}

TEST(CliParams, DefaultIsIllustrativePreset)
{
    const auto p = cli::paramsFromOptions(Options::parse({"progress"}));
    const auto ref = core::illustrativeParams();
    EXPECT_DOUBLE_EQ(p.energyBudget, ref.energyBudget);
    EXPECT_DOUBLE_EQ(p.backupCost, ref.backupCost);
}

TEST(CliParams, PresetsSelectable)
{
    const auto msp = cli::paramsFromOptions(
        Options::parse({"progress", "--preset", "msp430"}));
    EXPECT_NEAR(msp.execEnergy, 65.625, 1e-9);
    const auto m0 = cli::paramsFromOptions(
        Options::parse({"progress", "--preset", "cortexm0"}));
    EXPECT_NEAR(m0.execEnergy, 147.0, 1e-9);
    EXPECT_THROW(cli::paramsFromOptions(
                     Options::parse({"progress", "--preset", "zx81"})),
                 FatalError);
}

TEST(CliParams, OverridesApplyOnTopOfPreset)
{
    const auto p = cli::paramsFromOptions(Options::parse(
        {"progress", "--preset", "msp430", "--tauB", "5000",
         "--alphaB", "0.25", "--OmegaR", "10"}));
    EXPECT_DOUBLE_EQ(p.backupPeriod, 5000.0);
    EXPECT_DOUBLE_EQ(p.appStateRate, 0.25);
    EXPECT_DOUBLE_EQ(p.restoreCost, 10.0);
    EXPECT_NEAR(p.execEnergy, 65.625, 1e-9); // untouched preset value
}

TEST(CliParams, InvalidOverridesAreFatal)
{
    EXPECT_THROW(cli::paramsFromOptions(
                     Options::parse({"progress", "--E", "-5"})),
                 FatalError);
    EXPECT_THROW(cli::paramsFromOptions(Options::parse(
                     {"progress", "--epsC", "2", "--eps", "1"})),
                 FatalError);
}

TEST(CliParams, Msp430PeriodFlagScalesBudget)
{
    const auto half = cli::paramsFromOptions(Options::parse(
        {"progress", "--preset", "msp430", "--period-s", "0.125"}));
    const auto full = cli::paramsFromOptions(Options::parse(
        {"progress", "--preset", "msp430", "--period-s", "0.25"}));
    EXPECT_NEAR(full.energyBudget, 2.0 * half.energyBudget, 1.0);
}

} // namespace
