/**
 * @file
 * Golden-run correctness for every workload: executing the assembly on
 * the VM with unlimited energy must reproduce the C++ reference results,
 * in both the volatile (MSP430-style) and nonvolatile (Clank-style)
 * placements.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "util/panic.hh"
#include "workloads/detail.hh"
#include "workloads/workload.hh"

namespace {

using namespace eh;

std::vector<std::string>
allFinishingWorkloads()
{
    auto names = workloads::tableIINames();
    for (const auto &n : workloads::mibenchNames())
        names.push_back(n);
    return names;
}

sim::SimConfig
configFor(bool nonvolatile_data)
{
    sim::SimConfig cfg;
    cfg.sramUsedBytes = nonvolatile_data ? 64 : 6144;
    return cfg;
}

class WorkloadGolden : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadGolden, VolatileLayoutMatchesReference)
{
    const auto w =
        workloads::makeWorkload(GetParam(), workloads::volatileLayout());
    const auto cfg = configFor(false);
    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    ASSERT_TRUE(golden.halted);
    ASSERT_EQ(golden.resultWords.size(), w.expected.size());
    for (std::size_t i = 0; i < w.expected.size(); ++i) {
        EXPECT_EQ(golden.resultWords[i], w.expected[i])
            << "result word " << i << " of " << w.name;
    }
    EXPECT_GT(golden.instructions, 100u)
        << w.name << " should do non-trivial work";
}

TEST_P(WorkloadGolden, NonvolatileLayoutMatchesReference)
{
    const auto w = workloads::makeWorkload(GetParam(),
                                           workloads::nonvolatileLayout());
    const auto cfg = configFor(true);
    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    ASSERT_TRUE(golden.halted);
    ASSERT_EQ(golden.resultWords.size(), w.expected.size());
    for (std::size_t i = 0; i < w.expected.size(); ++i) {
        EXPECT_EQ(golden.resultWords[i], w.expected[i])
            << "result word " << i << " of " << w.name;
    }
}

TEST_P(WorkloadGolden, LayoutsAgreeOnResults)
{
    const auto wv =
        workloads::makeWorkload(GetParam(), workloads::volatileLayout());
    const auto wn = workloads::makeWorkload(GetParam(),
                                            workloads::nonvolatileLayout());
    EXPECT_EQ(wv.expected, wn.expected)
        << "placement must not change the algorithm's results";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadGolden,
    ::testing::ValuesIn(allFinishingWorkloads()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(WorkloadRegistry, TableIIHasSixEntries)
{
    EXPECT_EQ(workloads::tableIINames().size(), 6u);
}

TEST(WorkloadRegistry, MibenchHasThirteenEntries)
{
    EXPECT_EQ(workloads::mibenchNames().size(), 13u);
}

TEST(Aes, Fips197AppendixBKnownAnswer)
{
    // FIPS-197 Appendix B: key 2b7e151628aed2a6abf7158809cf4f3c,
    // plaintext 3243f6a8885a308d313198a2e0370734.
    const std::uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                  0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                  0x09, 0xcf, 0x4f, 0x3c};
    std::uint8_t state[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a,
                              0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2,
                              0xe0, 0x37, 0x07, 0x34};
    const std::uint8_t expected[16] = {0x39, 0x25, 0x84, 0x1d, 0x02,
                                       0xdc, 0x09, 0xfb, 0xdc, 0x11,
                                       0x85, 0x97, 0x19, 0x6a, 0x0b,
                                       0x32};
    const auto rk = workloads::detail::aes128ExpandKey(key);
    workloads::detail::aes128EncryptBlock(state, rk.data());
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(state[i], expected[i]) << i;
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_THROW((workloads::makeWorkload("no-such-benchmark",
                                          workloads::volatileLayout())),
                 eh::FatalError);
}

TEST(WorkloadRegistry, CounterNeverHalts)
{
    const auto w =
        workloads::makeWorkload("counter", workloads::volatileLayout());
    EXPECT_TRUE(w.resultAddrs.empty());
    EXPECT_TRUE(w.expected.empty());
}

} // namespace
