/**
 * @file
 * Tests for the sensitivity analysis of Section VI-C: the closed-form
 * dp/dalpha_B against finite differences, the structural identity
 * dp/dalpha_B = tau_B * dp/dA_B, the paper's claim that reducing
 * application state always beats reducing architectural state for
 * tau_B >= 1, and the reduced-bit-precision gain computation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/optimum.hh"
#include "core/params.hh"
#include "core/sensitivity.hh"
#include "core/sweep.hh"
#include "util/panic.hh"

namespace {

using namespace eh;
using core::DeadCycleMode;
using core::Params;

TEST(Sensitivity, ClosedFormMatchesNumericDifference)
{
    for (double tau_b : core::logspace(1.0, 1000.0, 15)) {
        Params p = core::illustrativeParams();
        p.backupPeriod = tau_b;
        const double closed = core::progressPerAppStateRate(p);
        const double numeric = core::numericProgressPerAppStateRate(p);
        EXPECT_NEAR(closed, numeric,
                    1e-4 * std::max(std::abs(numeric), 1e-9))
            << "tau_B=" << tau_b;
    }
}

TEST(Sensitivity, ArchClosedFormMatchesNumericDifference)
{
    for (double tau_b : core::logspace(1.0, 1000.0, 15)) {
        Params p = core::illustrativeParams();
        p.backupPeriod = tau_b;
        const double closed = core::progressPerArchState(p);
        const double numeric = core::numericProgressPerArchState(p);
        EXPECT_NEAR(closed, numeric,
                    1e-4 * std::max(std::abs(numeric), 1e-9))
            << "tau_B=" << tau_b;
    }
}

TEST(Sensitivity, AppStateSensitivityIsTauBTimesArchSensitivity)
{
    // dp/dalpha_B = tau_B * dp/dA_B: the algebraic identity behind the
    // paper's always-prefer-application-state conclusion.
    for (double tau_b : {1.0, 4.0, 50.0, 120.0}) {
        Params p = core::illustrativeParams();
        p.backupPeriod = tau_b;
        EXPECT_NEAR(core::progressPerAppStateRate(p),
                    tau_b * core::progressPerArchState(p), 1e-12);
    }
}

TEST(Sensitivity, ApplicationStateWinsForPeriodsAboveOneCycle)
{
    // |dp/dalpha_B| >= |dp/dA_B| whenever tau_B >= 1 (Section VI-C).
    for (double tau_b : core::logspace(1.0, 5000.0, 20)) {
        Params p = core::illustrativeParams();
        p.backupPeriod = tau_b;
        EXPECT_LE(core::progressPerAppStateRate(p),
                  core::progressPerArchState(p))
            << "both are negative; app must be more negative, tau_B="
            << tau_b;
    }
}

TEST(Sensitivity, DerivativesAreNegativeWhereProgressPositive)
{
    Params p = core::illustrativeParams();
    p.backupPeriod = 20.0;
    EXPECT_LT(core::progressPerAppStateRate(p), 0.0);
    EXPECT_LT(core::progressPerArchState(p), 0.0);
}

TEST(Sensitivity, ZeroWhenProgressPinnedAtZero)
{
    Params p = core::illustrativeParams();
    p.backupPeriod = 500.0; // dead energy 250 > E = 100
    EXPECT_EQ(core::progressPerAppStateRate(p), 0.0);
}

TEST(Sensitivity, NumericFallbackUsedWithCharging)
{
    // With charging the closed form does not apply; the function must
    // still agree with a direct finite difference.
    Params p = core::illustrativeParams();
    p.chargeEnergy = 0.2;
    p.backupPeriod = 30.0;
    EXPECT_NEAR(core::progressPerAppStateRate(p),
                core::numericProgressPerAppStateRate(p), 1e-9);
}

TEST(Sensitivity, SensitivityPeaksAtEquation16Period)
{
    Params p = core::illustrativeParams();
    const double tau_bit = core::bitPrecisionOptimalPeriod(p);
    const double peak = std::abs(core::progressPerAppStateRate(
        core::Model(p).withBackupPeriod(tau_bit).params()));
    for (double factor : {0.25, 0.5, 2.0, 4.0}) {
        const double off = std::abs(core::progressPerAppStateRate(
            core::Model(p).withBackupPeriod(tau_bit * factor).params()));
        EXPECT_GE(peak, off) << "factor=" << factor;
    }
}

TEST(Sensitivity, ReducedPrecisionGainIsExactRecomputation)
{
    Params p = core::illustrativeParams();
    p.backupPeriod = 30.0;
    const auto r = core::reducedPrecisionGain(p, 32, 8);
    EXPECT_DOUBLE_EQ(r.oldAppStateRate, p.appStateRate);
    EXPECT_DOUBLE_EQ(r.newAppStateRate, p.appStateRate * 0.75);
    EXPECT_GT(r.gain, 0.0);
    EXPECT_NEAR(r.newProgress - r.oldProgress, r.gain, 1e-15);
}

TEST(Sensitivity, RemovingAllBitsRemovesAllAppState)
{
    Params p = core::illustrativeParams();
    const auto r = core::reducedPrecisionGain(p, 16, 16);
    EXPECT_DOUBLE_EQ(r.newAppStateRate, 0.0);
}

TEST(Sensitivity, ZeroBitsRemovedIsNoOp)
{
    Params p = core::illustrativeParams();
    const auto r = core::reducedPrecisionGain(p, 32, 0);
    EXPECT_DOUBLE_EQ(r.gain, 0.0);
}

TEST(Sensitivity, RejectsBadBitCounts)
{
    const Params p = core::illustrativeParams();
    EXPECT_THROW(core::reducedPrecisionGain(p, 0, 0), FatalError);
    EXPECT_THROW(core::reducedPrecisionGain(p, 32, 33), FatalError);
    EXPECT_THROW(core::reducedPrecisionGain(p, 32, -1), FatalError);
}

TEST(Sensitivity, MoreBitsRemovedNeverHurts)
{
    Params p = core::illustrativeParams();
    p.backupPeriod = 50.0;
    double last = -1.0;
    for (int bits = 0; bits <= 32; bits += 4) {
        const auto r = core::reducedPrecisionGain(p, 32, bits);
        EXPECT_GE(r.gain, last);
        last = r.gain;
    }
}

} // namespace
