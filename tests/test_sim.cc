/**
 * @file
 * Simulator-level tests: checkpoint double-buffering under injected
 * failures, phase accounting, statistics aggregation, the observation
 * bridge into the EH model, and the golden runner's guarantees.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "runtime/watchdog.hh"
#include "sim/simulator.hh"
#include "util/panic.hh"
#include "workloads/workload.hh"

namespace {

using namespace eh;

sim::SimConfig
volConfig()
{
    sim::SimConfig cfg;
    cfg.sramUsedBytes = workloads::volatileLayout().sramUsedBytes;
    return cfg;
}

TEST(Simulator, FinishesWithAmpleEnergyInOnePeriod)
{
    const auto w = workloads::makeWorkload("crc",
                                           workloads::volatileLayout());
    auto cfg = volConfig();
    runtime::Watchdog policy(
        {.periodCycles = 5000, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(1e12);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    EXPECT_TRUE(stats.finished);
    EXPECT_EQ(stats.periods, 1u);
    EXPECT_EQ(stats.powerFailures, 0u);
    EXPECT_EQ(s.resultWord(w.resultAddrs[0]), w.expected[0]);
}

TEST(Simulator, MeasuredProgressDecreasesWithSmallerBudgets)
{
    // Less energy per period -> relatively more restore/dead overhead.
    const auto w = workloads::makeWorkload("sense",
                                           workloads::volatileLayout());
    auto cfg = volConfig();
    auto run = [&](double budget) {
        runtime::Watchdog policy(
            {.periodCycles = 3000, .sramUsedBytes = cfg.sramUsedBytes});
        energy::ConstantSupply supply(budget);
        sim::Simulator s(w.program, policy, supply, cfg);
        return s.run().measuredProgress();
    };
    const double big = run(50.0e6);
    const double small = run(2.5e6);
    EXPECT_GT(big, small);
    EXPECT_GT(small, 0.0);
}

TEST(Simulator, TauBStatisticTracksWatchdogPeriod)
{
    const auto w = workloads::makeWorkload("bitcount",
                                           workloads::volatileLayout());
    auto cfg = volConfig();
    runtime::Watchdog policy(
        {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(1e12);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    ASSERT_TRUE(stats.finished);
    ASSERT_GT(stats.tauB.count(), 5u);
    // Watchdog fires at >= 2000 cycles (instruction granularity adds
    // slack); the final halt commit contributes one short sample, so the
    // mean sits near — not exactly at — the period.
    EXPECT_GE(stats.tauB.mean(), 1800.0);
    EXPECT_LE(stats.tauB.mean(), 2200.0);
    EXPECT_GE(stats.tauB.max(), 2000.0);
}

TEST(Simulator, DeadCyclesNeverExceedObservedBackupSpacing)
{
    const auto w = workloads::makeWorkload("ds",
                                           workloads::volatileLayout());
    auto cfg = volConfig();
    runtime::Watchdog policy(
        {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(3.0e6);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    ASSERT_TRUE(stats.finished);
    ASSERT_GT(stats.powerFailures, 0u);
    // tau_D is capped by the time between commit opportunities plus one
    // backup's worth of cycles (a failed backup's work is dead too).
    EXPECT_LE(stats.tauD.max(), 2000.0 + 2500.0);
}

TEST(Simulator, EnergyConservationAcrossPhases)
{
    const auto w = workloads::makeWorkload("rsa",
                                           workloads::volatileLayout());
    auto cfg = volConfig();
    runtime::Watchdog policy(
        {.periodCycles = 2500, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(4.0e6);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    ASSERT_TRUE(stats.finished);
    // Total metered energy equals the per-period consumption total.
    const double metered = stats.meter.totalEnergy() +
                           stats.meter.uncommittedEnergy();
    const double consumed = stats.periodEnergy.sum();
    EXPECT_NEAR(metered, consumed, 1e-6 * consumed);
}

TEST(Simulator, ObservationBridgesToModel)
{
    const auto w = workloads::makeWorkload("ar",
                                           workloads::volatileLayout());
    auto cfg = volConfig();
    runtime::Watchdog policy(
        {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(5.0e6);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    ASSERT_TRUE(stats.finished);

    const auto obs = stats.observe(cfg, arch::Cpu::archStateBytes);
    EXPECT_GT(obs.energyPerPeriod, 0.0);
    EXPECT_GT(obs.execEnergy, 0.0);
    EXPECT_GT(obs.meanBackupPeriod, 0.0);
    EXPECT_GT(obs.measuredProgress, 0.0);

    const auto pred = core::predictFromObservation(obs);
    EXPECT_GT(pred.predictedProgress, 0.0);
    EXPECT_LE(pred.predictedProgress, 1.0);
    // The model should land in the right ballpark of the measurement.
    EXPECT_LT(pred.relativeError, 0.5)
        << "pred=" << pred.predictedProgress
        << " meas=" << pred.measuredProgress;
}

TEST(Simulator, SurvivesManyInjectedMidBackupFailures)
{
    // A budget barely above the restore+backup cost forces frequent
    // deaths inside the backup path; double buffering must keep a valid
    // checkpoint at all times and the final results must still be exact.
    const auto w = workloads::makeWorkload("midi",
                                           workloads::volatileLayout());
    auto cfg = volConfig();
    cfg.maxActivePeriods = 200000;
    runtime::Watchdog policy(
        {.periodCycles = 1500, .sramUsedBytes = cfg.sramUsedBytes});
    // Restore ~ (68+6144)*75 = 466k; backup (dirty-charged) is small.
    energy::ConstantSupply supply(1.1e6);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    ASSERT_TRUE(stats.finished) << stats.summary();
    EXPECT_GT(stats.powerFailures, 10u);
    for (std::size_t i = 0; i < w.resultAddrs.size(); ++i)
        EXPECT_EQ(s.resultWord(w.resultAddrs[i]), w.expected[i]);
}

TEST(Simulator, StarvedSupplyStopsCleanly)
{
    // A supply that can never reach the turn-on threshold must stop the
    // run without finishing rather than spinning forever.
    const auto w = workloads::makeWorkload("crc",
                                           workloads::volatileLayout());
    auto cfg = volConfig();
    energy::Transducer tx(1.0, 1.0, 1.0e6);
    energy::Capacitor cap(100e-6, 5.0, 3.0, 1.8);
    energy::HarvestingSupply supply(
        energy::makeConstantTrace(0.0, 1000), tx, cap);
    runtime::Watchdog policy(
        {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
    cfg.maxChargeCyclesPerPeriod = 100000;
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    EXPECT_FALSE(stats.finished);
    EXPECT_EQ(stats.periods, 0u);
}

TEST(Simulator, RunsOnHarvestedEnergy)
{
    const auto w = workloads::makeWorkload("sense",
                                           workloads::volatileLayout());
    auto cfg = volConfig();
    cfg.maxActivePeriods = 50000;
    // ~40 uW harvest at 2 V vs ~1 mW consumption: heavily intermittent.
    energy::Transducer tx(0.5, 50.0e3, 16.0e6);
    energy::Capacitor cap(2.2e-6, 3.6, 3.0, 2.2);
    energy::HarvestingSupply supply(
        energy::makeConstantTrace(2.0, 10'000'000), tx, cap);
    runtime::Watchdog policy(
        {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    ASSERT_TRUE(stats.finished) << stats.summary();
    EXPECT_GT(stats.periods, 1u);
    for (std::size_t i = 0; i < w.resultAddrs.size(); ++i)
        EXPECT_EQ(s.resultWord(w.resultAddrs[i]), w.expected[i]);
}

TEST(Simulator, RestoreFailuresAreSurvivedAndCounted)
{
    // A budget below the restore cost cannot ever finish, but must fail
    // gracefully: every period dies inside the restore, the old
    // checkpoint stays valid, and the counters say so.
    const auto w = workloads::makeWorkload("crc",
                                           workloads::volatileLayout());
    auto cfg = volConfig();
    cfg.maxActivePeriods = 50;
    runtime::Watchdog policy(
        {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
    // Restore charges (68 + 6144) * 75 ~ 466k; give less, so once the
    // first period's backup establishes a checkpoint every subsequent
    // restore browns out.
    energy::ConstantSupply supply(3.0e5);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    EXPECT_FALSE(stats.finished);
    EXPECT_GT(stats.failedRestores, 10u) << stats.summary();
    EXPECT_EQ(stats.periods, 50u);
}

TEST(Simulator, CachedPlatformStaysCorrectUnderFailures)
{
    // The mixed-volatility cache must change costs, never results.
    const auto w = workloads::makeWorkload(
        "crc", workloads::nonvolatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.enableNvmCache = true;
    cfg.maxActivePeriods = 60000;
    runtime::Watchdog policy(
        {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(1.2e6);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    ASSERT_TRUE(stats.finished) << stats.summary();
    EXPECT_GT(stats.powerFailures, 0u);
    for (std::size_t i = 0; i < w.resultAddrs.size(); ++i)
        EXPECT_EQ(s.resultWord(w.resultAddrs[i]), w.expected[i]);
}

TEST(Simulator, CacheReducesNvmEnergyForHotData)
{
    // crc re-reads its 1 KiB table constantly: with a cache the same
    // program must finish using fewer active periods on the same budget.
    const auto w = workloads::makeWorkload(
        "crc", workloads::nonvolatileLayout());
    auto run_with = [&](bool cached) {
        sim::SimConfig cfg;
        cfg.sramUsedBytes = 64;
        cfg.enableNvmCache = cached;
        cfg.cacheGeometry = {2048, 4, 16};
        cfg.maxActivePeriods = 60000;
        runtime::Watchdog policy(
            {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
        energy::ConstantSupply supply(1.0e6);
        sim::Simulator s(w.program, policy, supply, cfg);
        const auto stats = s.run();
        EXPECT_TRUE(stats.finished);
        return stats.periods;
    };
    EXPECT_LT(run_with(true), run_with(false));
}

TEST(Simulator, RejectsOversizedPayload)
{
    const auto w = workloads::makeWorkload("crc",
                                           workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = cfg.sramBytes + 1;
    runtime::Watchdog policy({});
    energy::ConstantSupply supply(1e9);
    EXPECT_THROW(sim::Simulator(w.program, policy, supply, cfg),
                 FatalError);
}

TEST(Simulator, RejectsTinyNvm)
{
    const auto w = workloads::makeWorkload("crc",
                                           workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.nvmBytes = 1024;
    cfg.sramUsedBytes = 4096;
    runtime::Watchdog policy({});
    energy::ConstantSupply supply(1e9);
    EXPECT_THROW(sim::Simulator(w.program, policy, supply, cfg),
                 FatalError);
}

TEST(Golden, CountsInstructionsCyclesEnergy)
{
    const auto w = workloads::makeWorkload("crc",
                                           workloads::volatileLayout());
    const auto g =
        sim::runGolden(w.program, volConfig(), w.resultAddrs);
    EXPECT_TRUE(g.halted);
    EXPECT_GT(g.cycles, g.instructions); // multi-cycle ops exist
    EXPECT_GT(g.energy, 0.0);
    EXPECT_EQ(g.resultWords.size(), w.resultAddrs.size());
}

TEST(Golden, InstructionCapIsFatal)
{
    const auto w = workloads::makeWorkload("counter",
                                           workloads::volatileLayout());
    EXPECT_THROW(
        sim::runGolden(w.program, volConfig(), {}, 10000),
        FatalError);
}

TEST(Simulator, RejectsZeroRunCaps)
{
    const auto w = workloads::makeWorkload("crc",
                                           workloads::volatileLayout());
    runtime::Watchdog policy({});
    energy::ConstantSupply supply(1e9);

    auto cfg = volConfig();
    cfg.maxActivePeriods = 0;
    EXPECT_THROW(sim::Simulator(w.program, policy, supply, cfg),
                 FatalError);

    cfg = volConfig();
    cfg.maxInstructionsPerPeriod = 0;
    EXPECT_THROW(sim::Simulator(w.program, policy, supply, cfg),
                 FatalError);
}

TEST(Simulator, RejectsBadCacheGeometry)
{
    const auto w = workloads::makeWorkload("crc",
                                           workloads::volatileLayout());
    runtime::Watchdog policy({});
    energy::ConstantSupply supply(1e9);

    auto cfg = volConfig();
    cfg.enableNvmCache = true;
    cfg.cacheGeometry = {0, 4, 16}; // zero capacity
    EXPECT_THROW(sim::Simulator(w.program, policy, supply, cfg),
                 FatalError);

    cfg.cacheGeometry = {1024, 0, 16}; // zero ways
    EXPECT_THROW(sim::Simulator(w.program, policy, supply, cfg),
                 FatalError);

    cfg.cacheGeometry = {1024, 4, 0}; // zero block
    EXPECT_THROW(sim::Simulator(w.program, policy, supply, cfg),
                 FatalError);

    // A "cache" bigger than the memory it fronts is a config typo.
    cfg.cacheGeometry = {1024 * 1024, 4, 16};
    cfg.nvmBytes = 256 * 1024;
    EXPECT_THROW(sim::Simulator(w.program, policy, supply, cfg),
                 FatalError);

    // The same geometry is fine when the cache is disabled.
    cfg.enableNvmCache = false;
    EXPECT_NO_THROW(sim::Simulator(w.program, policy, supply, cfg));
}

TEST(SimStats, SummaryMentionsKeyFields)
{
    sim::SimStats stats;
    stats.workload = "wname";
    stats.policy = "pname";
    const auto text = stats.summary();
    EXPECT_NE(text.find("wname"), std::string::npos);
    EXPECT_NE(text.find("pname"), std::string::npos);
    EXPECT_NE(text.find("tau_B"), std::string::npos);
}

TEST(SimStats, SummaryReportsFaultAndRecoveryCounters)
{
    sim::SimStats stats;
    stats.workload = "wname";
    stats.policy = "pname";
    stats.injectedPowerFailures = 5;
    stats.injectedBitFlips = 7;
    stats.corruptionsDetected = 3;
    stats.slotFallbacks = 2;
    stats.restartsFromScratch = 1;
    stats.transientRestoreFaults = 4;
    const auto text = stats.summary();
    EXPECT_NE(text.find("injected 5 power failures"), std::string::npos)
        << text;
    EXPECT_NE(text.find("7 bit flips"), std::string::npos);
    EXPECT_NE(text.find("3 corruptions"), std::string::npos);
    EXPECT_NE(text.find("2 slot fallbacks"), std::string::npos);
    EXPECT_NE(text.find("1 restarts from scratch"), std::string::npos);
    EXPECT_NE(text.find("4 transient restore faults"), std::string::npos);

    stats.gaveUp = true;
    EXPECT_NE(stats.summary().find("GAVE UP"), std::string::npos);
}

} // namespace
