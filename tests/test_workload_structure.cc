/**
 * @file
 * Structural invariants over every assembled workload, in both
 * placements: branch/call targets stay inside the program, memory
 * images land inside their regions and off the checkpoint area,
 * registers referenced are architectural, Table II programs expose the
 * CHECKPOINT ops the task-based runtimes need, and result addresses are
 * word-aligned nonvolatile locations.
 */

#include <gtest/gtest.h>

#include "arch/isa.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace {

using namespace eh;
using arch::InstrClass;
using arch::Opcode;

std::vector<std::string>
allNames()
{
    auto names = workloads::tableIINames();
    for (const auto &n : workloads::mibenchNames())
        names.push_back(n);
    names.push_back("counter");
    return names;
}

struct Placement
{
    std::string workload;
    bool nonvolatile;
};

class WorkloadStructure : public ::testing::TestWithParam<Placement>
{
  protected:
    workloads::Workload
    make() const
    {
        const auto layout = GetParam().nonvolatile
                                ? workloads::nonvolatileLayout()
                                : workloads::volatileLayout();
        return workloads::makeWorkload(GetParam().workload, layout);
    }
};

TEST_P(WorkloadStructure, BranchTargetsInsideProgram)
{
    const auto w = make();
    const auto size = static_cast<std::int64_t>(w.program.size());
    for (const auto &in : w.program.code) {
        const auto cls = classify(in.op);
        if (cls == InstrClass::Branch ||
            (cls == InstrClass::Call && in.op == Opcode::Call)) {
            EXPECT_GE(in.imm, 0) << opcodeName(in.op);
            EXPECT_LT(in.imm, size) << opcodeName(in.op);
        }
    }
}

TEST_P(WorkloadStructure, RegistersAreArchitectural)
{
    const auto w = make();
    for (const auto &in : w.program.code) {
        EXPECT_LT(in.rd, arch::NumRegs);
        EXPECT_LT(in.ra, arch::NumRegs);
        EXPECT_LT(in.rb, arch::NumRegs);
    }
}

TEST_P(WorkloadStructure, MemoryImagesFitTheirRegions)
{
    const auto w = make();
    const sim::SimConfig cfg; // default platform geometry
    const std::uint64_t sram = cfg.sramBytes;
    const std::uint64_t limit = sram + cfg.nvmBytes;
    // Keep clear of the double-buffered checkpoint region at the top of
    // NVM (2 slots of up to header+arch+payload, plus the selector).
    const std::uint64_t checkpoint_start =
        limit - 16 -
        2 * sim::checkpointSlotBytes(arch::Cpu::archStateBytes, 6144);
    for (const auto &init : w.program.memInits) {
        const auto end = init.addr + init.bytes.size();
        EXPECT_LE(end, limit) << "image beyond memory";
        EXPECT_LE(end, checkpoint_start)
            << "image collides with the checkpoint region";
        const bool starts_nv = init.addr >= sram;
        const bool ends_nv = end == 0 ? starts_nv : (end - 1) >= sram;
        EXPECT_EQ(starts_nv, ends_nv)
            << "image straddles the volatile/nonvolatile boundary";
    }
}

TEST_P(WorkloadStructure, ResultAddressesAreAlignedNonvolatileWords)
{
    const auto w = make();
    const sim::SimConfig cfg;
    for (const auto addr : w.resultAddrs) {
        EXPECT_EQ(addr % 4, 0u) << addr;
        EXPECT_GE(addr, cfg.sramBytes)
            << "results must survive power failures";
        EXPECT_LT(addr + 4, cfg.sramBytes + cfg.nvmBytes);
    }
    EXPECT_EQ(w.resultAddrs.size(), w.expected.size());
}

TEST_P(WorkloadStructure, VolatilePlacementStaysInsidePayload)
{
    if (GetParam().nonvolatile)
        GTEST_SKIP() << "volatile-placement property";
    const auto layout = workloads::volatileLayout();
    const auto w = workloads::makeWorkload(GetParam().workload, layout);
    for (const auto &init : w.program.memInits) {
        if (init.addr < 8192) { // SRAM image
            EXPECT_LE(init.addr + init.bytes.size(),
                      layout.sramUsedBytes)
                << "volatile data outside the backed-up payload would "
                   "be lost across power failures";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadStructure,
    ::testing::ValuesIn([] {
        std::vector<Placement> placements;
        for (const auto &name : allNames()) {
            placements.push_back({name, false});
            placements.push_back({name, true});
        }
        return placements;
    }()),
    [](const ::testing::TestParamInfo<Placement> &info) {
        return info.param.workload +
               (info.param.nonvolatile ? "_nv" : "_vol");
    });

TEST(WorkloadStructureGlobal, TableIIProgramsExposeCheckpoints)
{
    // Mementos/DINO need program-induced backup points.
    for (const auto &name : workloads::tableIINames()) {
        const auto w =
            workloads::makeWorkload(name, workloads::volatileLayout());
        bool has_checkpoint = false;
        for (const auto &in : w.program.code)
            has_checkpoint |= in.op == Opcode::Checkpoint;
        EXPECT_TRUE(has_checkpoint) << name;
    }
}

TEST(WorkloadStructureGlobal, FinishingProgramsEndInHalt)
{
    for (const auto &name : workloads::tableIINames()) {
        const auto w =
            workloads::makeWorkload(name, workloads::volatileLayout());
        bool has_halt = false;
        for (const auto &in : w.program.code)
            has_halt |= in.op == Opcode::Halt;
        EXPECT_TRUE(has_halt) << name;
    }
    const auto counter =
        workloads::makeWorkload("counter", workloads::volatileLayout());
    for (const auto &in : counter.program.code)
        EXPECT_NE(in.op, Opcode::Halt) << "counter must never halt";
}

} // namespace
