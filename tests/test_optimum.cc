/**
 * @file
 * Property tests for the closed-form optima of Section IV. Each equation
 * is validated against numeric optimization of the general model under
 * the paper's derivation assumptions, and the structural claims —
 * worst-case optimum below average-case optimum, break-even behaviour of
 * the backup/restore derivatives — are checked across parameter grids.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hh"
#include "core/optimum.hh"
#include "core/params.hh"
#include "core/sweep.hh"
#include "util/panic.hh"

namespace {

using namespace eh;
using core::DeadCycleMode;
using core::Model;
using core::Params;

/** Parameter grid under the paper's derivation assumptions. */
std::vector<Params>
paperAssumptionGrid()
{
    std::vector<Params> grid;
    for (double e : {50.0, 100.0, 1000.0}) {
        for (double omega : {0.25, 1.0, 4.0}) {
            for (double arch : {0.5, 1.0, 8.0}) {
                for (double alpha : {0.0, 0.1, 0.5}) {
                    Params p = core::illustrativeParams();
                    p.energyBudget = e;
                    p.backupCost = omega;
                    p.archStateBackup = arch;
                    p.appStateRate = alpha;
                    grid.push_back(p);
                }
            }
        }
    }
    return grid;
}

TEST(Optimum, Equation9MatchesNumericArgmax)
{
    for (const auto &p : paperAssumptionGrid()) {
        const double closed = core::optimalBackupPeriod(p);
        const double numeric = core::numericOptimalBackupPeriod(
            p, DeadCycleMode::Average, 1e-3, 1e7);
        // Relative agreement; the numeric argmax is exact to the golden-
        // section tolerance.
        EXPECT_NEAR(closed, numeric, 1e-4 * std::max(closed, 1.0))
            << p.describe();
    }
}

TEST(Optimum, Equation10MatchesNumericWorstCaseArgmax)
{
    for (const auto &p : paperAssumptionGrid()) {
        const double closed = core::worstCaseOptimalBackupPeriod(p);
        const double numeric = core::numericOptimalBackupPeriod(
            p, DeadCycleMode::WorstCase, 1e-3, 1e7);
        EXPECT_NEAR(closed, numeric, 1e-4 * std::max(closed, 1.0))
            << p.describe();
    }
}

TEST(Optimum, WorstCaseOptimumStrictlyBelowAverageOptimum)
{
    // Section IV-A2's key takeaway: tau_B,opt(wc) < tau_B,opt, always,
    // for A_B > 0.
    for (const auto &p : paperAssumptionGrid()) {
        if (p.archStateBackup <= 0.0)
            continue;
        EXPECT_LT(core::worstCaseOptimalBackupPeriod(p),
                  core::optimalBackupPeriod(p))
            << p.describe();
    }
}

TEST(Optimum, ZeroArchStateGivesZeroOptimalPeriod)
{
    Params p = core::illustrativeParams();
    p.archStateBackup = 0.0;
    EXPECT_EQ(core::optimalBackupPeriod(p), 0.0);
    EXPECT_EQ(core::worstCaseOptimalBackupPeriod(p), 0.0);
    EXPECT_EQ(core::bitPrecisionOptimalPeriod(p), 0.0);
}

TEST(Optimum, Equation9ClosedFormValue)
{
    // Hand-computed instance: E=100, eps=1, Omega_B=1, A_B=1,
    // alpha_B=0.1 -> k=1, m=1.1,
    // tau_opt = (1/1.1) * (sqrt(2*100*1.1 + 1) - 1).
    const Params p = core::illustrativeParams();
    const double expected = (1.0 / 1.1) * (std::sqrt(221.0) - 1.0);
    EXPECT_NEAR(core::optimalBackupPeriod(p), expected, 1e-12);
}

TEST(Optimum, BreakEvenMatchesEquation11)
{
    EXPECT_NEAR(core::breakEvenBackupPeriod(100.0, 10.0, 5.0, 1.0),
                2.0 / 3.0 * 85.0, 1e-12);
    EXPECT_THROW(core::breakEvenBackupPeriod(0.0, 1.0, 1.0, 1.0),
                 PanicError);
}

TEST(Optimum, DerivativesEqualAtBreakEvenPeriod)
{
    // At tau_B,be the marginal benefit of shaving backup energy equals
    // that of shaving restore energy (Section IV-A3).
    Params p = core::illustrativeParams();
    p.restoreCost = 0.5;
    p.archStateRestore = 2.0;
    const double tau_be = core::breakEvenBackupPeriodFixedPoint(p);
    ASSERT_GT(tau_be, 0.0);
    p.backupPeriod = tau_be;
    const double d_b = core::progressPerBackupEnergy(p);
    const double d_r = core::progressPerRestoreEnergy(p);
    EXPECT_LT(d_b, 0.0);
    EXPECT_LT(d_r, 0.0);
    EXPECT_NEAR(d_b, d_r, 1e-6 * std::abs(d_b));
}

TEST(Optimum, BackupMattersBelowBreakEvenRestoreAbove)
{
    Params p = core::illustrativeParams();
    p.restoreCost = 0.5;
    p.archStateRestore = 2.0;
    const double tau_be = core::breakEvenBackupPeriodFixedPoint(p);
    ASSERT_GT(tau_be, 1.0);

    // Below break-even: backup reduction is the better lever
    // (more negative derivative).
    Params below = p;
    below.backupPeriod = tau_be / 2.0;
    EXPECT_LT(core::progressPerBackupEnergy(below),
              core::progressPerRestoreEnergy(below));

    // Above break-even: restore reduction wins.
    Params above = p;
    above.backupPeriod = tau_be * 1.4;
    EXPECT_GT(core::progressPerBackupEnergy(above),
              core::progressPerRestoreEnergy(above));
}

TEST(Optimum, DerivativesMatchFiniteDifferences)
{
    // dp/de_B and dp/de_R analytic forms vs central differences on a
    // model where e_B / e_R are perturbed via Omega scaling.
    Params p = core::illustrativeParams();
    p.restoreCost = 0.4;
    p.archStateRestore = 2.0;
    p.backupPeriod = 25.0;
    Model m(p);

    const double e_b = m.backupEnergyPerBackup();
    const double e_r = m.restoreEnergy(p.backupPeriod / 2.0);
    ASSERT_GT(e_b, 0.0);
    ASSERT_GT(e_r, 0.0);

    // Perturb e_B by scaling Omega_B (A_B + alpha tau fixed).
    auto progress_with_backup_energy = [&](double target) {
        Params q = p;
        q.backupCost = p.backupCost * target / e_b;
        return Model(q).progress();
    };
    const double num_db = core::numericDerivative(
        progress_with_backup_energy, e_b, 1e-5 * e_b);
    EXPECT_NEAR(core::progressPerBackupEnergy(p), num_db,
                1e-5 * std::abs(num_db));

    auto progress_with_restore_energy = [&](double target) {
        Params q = p;
        q.restoreCost = p.restoreCost * target / e_r;
        return Model(q).progress();
    };
    const double num_dr = core::numericDerivative(
        progress_with_restore_energy, e_r, 1e-5 * e_r);
    EXPECT_NEAR(core::progressPerRestoreEnergy(p), num_dr,
                1e-5 * std::abs(num_dr));
}

TEST(Optimum, GoldenSectionFindsParabolaMaximum)
{
    const double x = core::goldenSectionMaximize(
        [](double v) { return -(v - 3.25) * (v - 3.25); }, 0.0, 10.0);
    EXPECT_NEAR(x, 3.25, 1e-7);
}

TEST(Optimum, GoldenSectionRejectsEmptyBracket)
{
    EXPECT_THROW(core::goldenSectionMaximize([](double v) { return v; },
                                             1.0, 1.0),
                 PanicError);
}

TEST(Optimum, BitPrecisionPeriodExceedsProgressOptimum)
{
    // tau_B,bit has scale 3/2 and a larger sqrt factor, so it always
    // exceeds tau_B,opt for the same parameters.
    for (const auto &p : paperAssumptionGrid()) {
        if (p.archStateBackup <= 0.0)
            continue;
        EXPECT_GT(core::bitPrecisionOptimalPeriod(p),
                  core::optimalBackupPeriod(p))
            << p.describe();
    }
}

TEST(Optimum, Equation16MaximizesAppStateSensitivity)
{
    // |dp/dalpha_B| as a function of tau_B peaks at Equation 16's root.
    Params p = core::illustrativeParams();
    const double tau_bit = core::bitPrecisionOptimalPeriod(p);
    ASSERT_GT(tau_bit, 0.0);

    auto magnitude = [&](double tau) {
        Params q = p;
        q.backupPeriod = tau;
        // Closed form of |dp/dalpha_B| (Section VI-C).
        const double x = tau;
        const double a = q.execEnergy / (2.0 * q.energyBudget);
        const double k = q.backupCost * q.archStateBackup;
        const double mm = q.backupCost * q.appStateRate + q.execEnergy;
        const double live = 1.0 - a * x;
        if (live <= 0.0)
            return 0.0;
        const double denom = k + mm * x;
        return q.backupCost * q.execEnergy * x * x * live /
               (denom * denom);
    };
    const double numeric = core::goldenSectionMaximize(
        [&](double log_tau) { return magnitude(std::exp(log_tau)); },
        std::log(0.1), std::log(1e6), 1e-12);
    EXPECT_NEAR(tau_bit, std::exp(numeric),
                1e-5 * std::max(tau_bit, 1.0));
}

TEST(Optimum, FixedPointBreakEvenIsSelfConsistent)
{
    Params p = core::illustrativeParams();
    p.restoreCost = 0.3;
    p.archStateRestore = 1.0;
    const double tau = core::breakEvenBackupPeriodFixedPoint(p);
    ASSERT_GT(tau, 0.0);
    Model m(p);
    const double e_b = m.backupEnergyPerBackup(tau);
    const double e_r = m.restoreEnergy(tau / 2.0);
    EXPECT_NEAR(tau,
                core::breakEvenBackupPeriod(p.energyBudget, e_b, e_r,
                                            p.execEnergy),
                1e-6 * tau);
}

} // namespace
