/**
 * @file
 * Tests for the utility layer: streaming statistics (the SEM error bars
 * of Figs 8–10 and the geomean error metric of Fig 6), deterministic
 * RNG, CSV output, table formatting, sweep helpers and the calibration
 * bridge.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/calibration.hh"
#include "core/sweep.hh"
#include "util/crc.hh"
#include "util/csv.hh"
#include "util/log.hh"
#include "util/panic.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace {

using namespace eh;

TEST(RunningStats, MeanVarianceKnownValues)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    EXPECT_NEAR(s.sem(), s.stddev() / std::sqrt(8.0), 1e-12);
}

TEST(RunningStats, EmptyAndSingleton)
{
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sem(), 0.0);
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    Rng rng(99);
    RunningStats all, a, b;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.nextGaussian() * 3.0 + 10.0;
        all.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, GeomeanKnownValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0, 16.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    // Zeros are clamped, not fatal (error geomeans).
    EXPECT_GT(geomean({0.0, 4.0}), 0.0);
    EXPECT_THROW(geomean({-1.0}), PanicError);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
    EXPECT_THROW(percentile(v, 101.0), PanicError);
}

TEST(Stats, PearsonCorrelation)
{
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 5, 9}), 0.0);
}

TEST(Stats, HistogramBinsAndClamps)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);
    h.add(9.9);
    h.add(-100.0); // clamped into bin 0
    h.add(100.0);  // clamped into the last bin
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_THROW(Histogram(1.0, 1.0, 4), PanicError);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(123);
    for (int i = 0; i < 100; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, UniformDoublesInRange)
{
    Rng rng(7);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_LT(lo, 0.05);
    EXPECT_GT(hi, 0.95);
}

TEST(Rng, NextBelowIsUnbiasedEnough)
{
    Rng rng(11);
    std::size_t counts[10] = {};
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBelow(10)];
    for (auto c : counts)
        EXPECT_NEAR(static_cast<double>(c), n / 10.0, n / 10.0 * 0.1);
    EXPECT_THROW(rng.nextBelow(0), PanicError);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.nextGaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, ForksAreIndependentAndStable)
{
    Rng root(42);
    Rng f1 = root.fork(1);
    Rng f2 = root.fork(2);
    Rng f1b = Rng(42).fork(1);
    EXPECT_EQ(f1.next(), f1b.next());
    EXPECT_NE(f1.next(), f2.next());
}

TEST(Rng, SplitStreamsAreIndependent)
{
    // split() feeds campaign jobs from sparse, adversarial stream ids
    // (64-bit content hashes). Dense ids, single-bit-apart ids and
    // hash-like ids must all open distinct, stable streams.
    Rng root(0xFEEDFACEull);
    std::set<std::uint64_t> ids;
    for (std::uint64_t id = 0; id < 512; ++id)
        ids.insert(id);
    for (int bit = 0; bit < 64; ++bit)
        ids.insert(1ull << bit);
    for (std::uint64_t id = 0; id < 64; ++id)
        ids.insert(0x9e3779b97f4a7c15ull * (id + 1));
    std::set<std::uint64_t> first_draws;
    for (std::uint64_t id : ids)
        first_draws.insert(root.split(id).next());
    EXPECT_EQ(first_draws.size(), ids.size());

    // Stability: the same (seed, stream) pair always yields the same
    // stream, and split() leaves the parent untouched.
    EXPECT_EQ(root.split(12345).next(),
              Rng(0xFEEDFACEull).split(12345).next());
    Rng a(99);
    const Rng b = a.split(7);
    (void)b;
    EXPECT_EQ(a.next(), Rng(99).next());
}

TEST(Rng, SplitDiffersFromForkAndFromParent)
{
    Rng root(0x5EEDull);
    EXPECT_NE(root.split(3).next(), root.fork(3).next());
    EXPECT_NE(root.split(0).next(), Rng(0x5EEDull).next());
    // Different parents must give different streams for the same id.
    EXPECT_NE(Rng(1).split(42).next(), Rng(2).split(42).next());
}

TEST(Csv, WritesHeaderRowsAndEscapes)
{
    const std::string path = "/tmp/eh_test_csv.csv";
    {
        CsvWriter w(path, {"a", "b"});
        w.row({"plain", "has,comma"});
        w.rowNumeric({1.5, 2.0});
        EXPECT_EQ(w.rows(), 2u);
        EXPECT_THROW(w.row({"too", "many", "cells"}), PanicError);
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "plain,\"has,comma\"");
    std::getline(in, line);
    EXPECT_EQ(line, "1.5,2");
    std::remove(path.c_str());
}

TEST(Csv, UnwritablePathIsFatal)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), FatalError);
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.row({"x", "1"});
    t.row({"longer-name", "2"});
    std::ostringstream oss;
    t.print(oss);
    const auto text = oss.str();
    EXPECT_NE(text.find("longer-name"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_THROW(t.row({"only-one"}), PanicError);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
}

TEST(Sweep, LinspaceEndpointsExact)
{
    const auto xs = core::linspace(0.0, 1.0, 11);
    ASSERT_EQ(xs.size(), 11u);
    EXPECT_DOUBLE_EQ(xs.front(), 0.0);
    EXPECT_DOUBLE_EQ(xs.back(), 1.0);
    EXPECT_NEAR(xs[5], 0.5, 1e-12);
}

TEST(Sweep, LogspaceMultiplicative)
{
    const auto xs = core::logspace(1.0, 1000.0, 4);
    ASSERT_EQ(xs.size(), 4u);
    EXPECT_NEAR(xs[1] / xs[0], 10.0, 1e-9);
    EXPECT_NEAR(xs[2] / xs[1], 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(xs.back(), 1000.0);
    EXPECT_THROW(core::logspace(0.0, 10.0, 3), PanicError);
}

TEST(Sweep, Sweep1DFindsArgmax)
{
    const auto xs = core::linspace(-5.0, 5.0, 101);
    const auto r =
        core::sweep1D(xs, [](double x) { return -(x - 2.0) * (x - 2.0); });
    EXPECT_NEAR(r.bestX, 2.0, 0.06);
    EXPECT_EQ(r.points.size(), 101u);
    EXPECT_EQ(r.values().size(), 101u);
    EXPECT_EQ(r.xs().size(), 101u);
}

TEST(Sweep, Sweep2DFindsArgmax)
{
    const auto xs = core::linspace(0.0, 4.0, 5);
    const auto ys = core::linspace(0.0, 4.0, 5);
    const auto g = core::sweep2D(xs, ys, [](double x, double y) {
        return -(x - 3.0) * (x - 3.0) - (y - 1.0) * (y - 1.0);
    });
    EXPECT_DOUBLE_EQ(g.bestX, 3.0);
    EXPECT_DOUBLE_EQ(g.bestY, 1.0);
    EXPECT_EQ(g.cells.size(), 25u);
    EXPECT_DOUBLE_EQ(g.at(3, 1).value, 0.0);
}

TEST(Calibration, ObservationRoundTripsIntoParams)
{
    core::ObservedBehavior obs;
    obs.name = "unit";
    obs.energyPerPeriod = 1e6;
    obs.execEnergy = 65.0;
    obs.meanBackupPeriod = 2000.0;
    obs.meanDeadCycles = 900.0;
    obs.meanAppStateRate = 0.12;
    obs.archStateBytes = 68.0;
    obs.backupCost = 75.0;
    obs.restoreCost = 75.0;
    obs.measuredProgress = 0.8;

    const auto p = core::observedToParams(obs);
    EXPECT_DOUBLE_EQ(p.energyBudget, 1e6);
    EXPECT_DOUBLE_EQ(p.backupPeriod, 2000.0);
    EXPECT_DOUBLE_EQ(p.appStateRate, 0.12);
    EXPECT_NO_THROW(p.validate());

    const auto pred = core::predictFromObservation(obs);
    EXPECT_GT(pred.predictedProgress, 0.0);
    EXPECT_DOUBLE_EQ(pred.measuredProgress, 0.8);
    EXPECT_GE(pred.relativeError, 0.0);
}

TEST(Calibration, DeadCyclesClampedToThePeriod)
{
    core::ObservedBehavior obs;
    obs.name = "clamp";
    obs.energyPerPeriod = 1e6;
    obs.execEnergy = 65.0;
    obs.meanBackupPeriod = 100.0;
    obs.meanDeadCycles = 1e9; // bogus: more than a whole period
    obs.backupCost = 75.0;
    obs.archStateBytes = 68.0;
    obs.measuredProgress = 0.5;
    const auto pred = core::predictFromObservation(obs);
    // Clamped to tau_D = E / eps: an entire dead period predicts zero
    // progress, never a negative value.
    EXPECT_DOUBLE_EQ(pred.predictedProgress, 0.0);

    // Dead time may legitimately exceed tau_B (aborted backups), and
    // still predicts positive progress while below a full period.
    obs.meanDeadCycles = 400.0;
    EXPECT_GT(core::predictFromObservation(obs).predictedProgress, 0.0);
}

TEST(Calibration, RejectsUnusableObservations)
{
    core::ObservedBehavior obs;
    obs.name = "bad";
    EXPECT_THROW(core::observedToParams(obs), FatalError);
}

TEST(Crc32, StandardCheckValue)
{
    // The universal CRC-32/IEEE check value; also pins byte order and
    // the final XOR so checkpoint digests stay stable across platforms.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0x00000000u);
    const std::uint8_t zeros[4] = {0, 0, 0, 0};
    EXPECT_EQ(crc32(zeros, 4), 0x2144DF1Cu);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    std::vector<std::uint8_t> buf(300);
    Rng rng(7);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    const std::uint32_t whole = crc32(buf.data(), buf.size());
    for (std::size_t split : {std::size_t{0}, std::size_t{1},
                              std::size_t{17}, buf.size() - 1,
                              buf.size()}) {
        std::uint32_t acc = crc32Init();
        acc = crc32Update(acc, buf.data(), split);
        acc = crc32Update(acc, buf.data() + split, buf.size() - split);
        EXPECT_EQ(crc32Final(acc), whole) << "split at " << split;
    }
}

TEST(Crc32, DetectsSingleBitFlips)
{
    std::vector<std::uint8_t> buf(64, 0xA5);
    const std::uint32_t clean = crc32(buf.data(), buf.size());
    for (std::size_t byte : {std::size_t{0}, std::size_t{31},
                             std::size_t{63}}) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            buf[byte] ^= static_cast<std::uint8_t>(1u << bit);
            EXPECT_NE(crc32(buf.data(), buf.size()), clean)
                << "byte " << byte << " bit " << bit;
            buf[byte] ^= static_cast<std::uint8_t>(1u << bit);
        }
    }
}

TEST(Rng, StreamIsStableAcrossReleases)
{
    // Regression pin: fault plans, workload generators and the paper's
    // figures all replay from seeds, so the generator's output for a
    // fixed seed is part of the repo's ABI. If this test fails, every
    // archived CSV and every FaultPlan replay silently changes meaning.
    Rng r(0x1234ABCDull);
    const std::uint64_t expected[8] = {
        0xed3ee4d11eaad8bbull, 0x6147fc906da08156ull,
        0x271610f4dd018b3cull, 0x5023bb6c5161c486ull,
        0xcce3b1f6a11dbb26ull, 0xe1951d6373cbce63ull,
        0x14419b39e22484caull, 0x6fa077ac21907952ull,
    };
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(r.next(), expected[i]) << "draw " << i;

    Rng d(0x1234ABCDull);
    EXPECT_DOUBLE_EQ(d.nextDouble(), 0.92674093347038011);
    EXPECT_DOUBLE_EQ(d.nextDouble(), 0.38000467802123872);
    EXPECT_DOUBLE_EQ(d.nextDouble(), 0.15268045404537223);
    EXPECT_DOUBLE_EQ(d.nextDouble(), 0.31304522890548636);

    Rng f(0x1234ABCDull);
    EXPECT_EQ(f.fork(3).next(), 0x32d83b558398a859ull);
}

TEST(Histogram, MergeIsCommutative)
{
    Rng rng(41);
    Histogram ab(0.0, 100.0, 20), ba(0.0, 100.0, 20);
    Histogram a(0.0, 100.0, 20), b(0.0, 100.0, 20);
    for (int i = 0; i < 300; ++i) {
        const double v = rng.nextDouble() * 120.0 - 10.0; // hits clamps
        (i % 3 ? a : b).add(v);
    }
    ab = a;
    ab.merge(b);
    ba = b;
    ba.merge(a);
    ASSERT_EQ(ab.total(), 300u);
    for (std::size_t i = 0; i < ab.bins(); ++i)
        EXPECT_EQ(ab.binCount(i), ba.binCount(i)) << "bin " << i;
    EXPECT_THROW(ab.merge(Histogram(0.0, 50.0, 20)), PanicError);
}

TEST(Histogram, QuantileWithinOneBinOfExact)
{
    // Uniform fill: quantile(q) must land within the bin containing
    // rank q, i.e. within one bin width (here 1.0) of the exact value.
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 1000; ++i)
        h.add(0.1 * i);
    for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
        const double exact = q * 100.0;
        EXPECT_NEAR(h.quantile(q), exact, 1.0) << "q=" << q;
    }
    EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
    EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
    EXPECT_DOUBLE_EQ(Histogram(0.0, 1.0, 4).quantile(0.5), 0.0);
}

TEST(Log2Histogram, BucketEdgesAndExactSums)
{
    Log2Histogram h;
    for (std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 7u, 8u, 1023u, 1024u})
        h.add(v);
    EXPECT_EQ(h.bucket(0), 1u); // value 0
    EXPECT_EQ(h.bucket(1), 1u); // value 1
    EXPECT_EQ(h.bucket(2), 2u); // 2..3
    EXPECT_EQ(h.bucket(3), 2u); // 4..7
    EXPECT_EQ(h.bucket(10), 1u); // 512..1023
    EXPECT_EQ(h.bucket(11), 1u); // 1024..2047
    EXPECT_EQ(h.total(), 9u);
    EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 7 + 8 + 1023 + 1024);
    EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum()) / 9.0);
    EXPECT_EQ(Log2Histogram::bucketLo(3), 4u);
    EXPECT_EQ(Log2Histogram::bucketHi(3), 7u);
    EXPECT_EQ(Log2Histogram::bucketHi(64),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Log2Histogram, MergeCommutativeAndQuantileBounded)
{
    Rng rng(43);
    Log2Histogram a, b;
    for (int i = 0; i < 400; ++i) {
        const std::uint64_t v = rng.next() >> (rng.next() % 48);
        (i % 2 ? a : b).add(v);
    }
    Log2Histogram ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    for (std::size_t i = 0; i < Log2Histogram::bucketCount; ++i)
        EXPECT_EQ(ab.bucket(i), ba.bucket(i)) << "bucket " << i;
    EXPECT_EQ(ab.sum(), ba.sum());
    // Quantiles are bounded by their bucket's edges and monotone in q.
    double prev = 0.0;
    for (double q : {0.05, 0.5, 0.95, 0.99}) {
        const double v = ab.quantile(q);
        EXPECT_GE(v, prev) << "q=" << q;
        prev = v;
    }
    EXPECT_DOUBLE_EQ(Log2Histogram().quantile(0.5), 0.0);
}

TEST(Log, ConcurrentEmissionAndStatusLinesDoNotRace)
{
    // The campaign progress line and worker warnings share one mutex
    // (util/log); this is the TSan-visible regression test for it.
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet); // keep test output clean
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < 200; ++i) {
                statusLine("worker " + std::to_string(t) + " step " +
                           std::to_string(i));
                debug("dbg ", t, " ", i);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    statusLine("done", true);
    setLogLevel(before);
}

} // namespace
