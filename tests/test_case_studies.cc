/**
 * @file
 * Tests for the case-study analyses: store-major locality (Section VI-A,
 * Equations 13–14) including its consistency with the cache simulator,
 * and circular-buffer idempotency sizing (Section VI-B, Equation 15)
 * including its consistency with the idempotency tracker.
 */

#include <gtest/gtest.h>

#include "arch/tracker.hh"
#include "core/idempotency.hh"
#include "core/locality.hh"
#include "core/optimum.hh"
#include "core/params.hh"
#include "mem/cache.hh"
#include "util/panic.hh"

namespace {

using namespace eh;
using core::LocalityParams;

LocalityParams
transposeScenario()
{
    // Matrix transpose: read footprint == write footprint
    // (the paper's Listing 1 example).
    LocalityParams lp;
    lp.blockBytes = 16.0;
    lp.loadBytes = 4.0;
    lp.storeBytes = 4.0;
    lp.loadRate = 0.1;
    lp.appStateRate = 0.1;
    lp.loadBandwidth = 1.0;
    lp.backupBandwidth = 1.0;
    lp.progressCycles = 10000.0;
    lp.backupPeriod = 1000.0;
    lp.backupCount = 10.0;
    return lp;
}

TEST(Locality, EqualFootprintsAndSymmetricNvmAreAWash)
{
    // Paper: with sigma_load == sigma_B and equal read/write footprints,
    // load-major and store-major perform identically.
    const auto lp = transposeScenario();
    EXPECT_NEAR(core::loadMajorOverStoreMajorRatio(lp), 1.0, 1e-12);
    EXPECT_FALSE(core::storeMajorWins(lp));
}

TEST(Locality, SlowNvmWritesFavourStoreMajor)
{
    // STT-RAM-style 10x write latency (sigma_B = sigma_load / 10) makes
    // store-major loops win (Section VI-A).
    auto lp = transposeScenario();
    lp.backupBandwidth = 0.1;
    EXPECT_TRUE(core::storeMajorWins(lp));
    EXPECT_GT(core::loadMajorOverStoreMajorRatio(lp), 1.0);
}

TEST(Locality, WriteHeavyApplicationsFavourStoreMajor)
{
    auto lp = transposeScenario();
    lp.appStateRate = 0.5; // write footprint 5x the read footprint
    EXPECT_TRUE(core::storeMajorWins(lp));
}

TEST(Locality, ReadHeavyApplicationsFavourLoadMajor)
{
    auto lp = transposeScenario();
    lp.loadRate = 0.5;
    EXPECT_FALSE(core::storeMajorWins(lp));
    EXPECT_LT(core::loadMajorOverStoreMajorRatio(lp), 1.0);
}

TEST(Locality, RatioGrowsWithBlockToStoreRatio)
{
    auto lp = transposeScenario();
    lp.backupBandwidth = 0.5;
    double last = 0.0;
    for (double block : {8.0, 16.0, 32.0, 64.0}) {
        lp.blockBytes = block;
        const double ratio = core::loadMajorOverStoreMajorRatio(lp);
        EXPECT_GT(ratio, last);
        last = ratio;
    }
}

TEST(Locality, ValidationRejectsBadShapes)
{
    auto lp = transposeScenario();
    lp.loadBytes = 32.0; // wider than the block
    EXPECT_THROW(lp.validate(), FatalError);
    lp = transposeScenario();
    lp.blockBytes = 0.0;
    EXPECT_THROW(lp.validate(), FatalError);
    lp = transposeScenario();
    lp.backupBandwidth = 0.0;
    EXPECT_THROW(lp.validate(), FatalError);
}

TEST(Locality, CacheSimulatorExhibitsTheBlockInflation)
{
    // Drive the real cache with the two loop orders of Listing 1 and
    // confirm the beta_block/beta_store backup-traffic inflation the
    // analysis predicts.
    constexpr std::size_t dim = 16;       // 16x16 matrix of words
    constexpr std::size_t block = 16;     // 4 words per block
    mem::CacheGeometry geom{512, 4, block};

    // Store-major: writes walk contiguously -> one dirty block per four
    // stores.
    mem::Cache store_major(geom);
    for (std::size_t i = 0; i < dim; ++i)
        for (std::size_t j = 0; j < dim; ++j)
            store_major.access(0x1000 + (i * dim + j) * 4, 4, true);
    const auto sm = store_major.flushDirty();

    // Load-major ordering of the same stores: writes stride by a row.
    mem::Cache load_major(geom);
    for (std::size_t i = 0; i < dim; ++i)
        for (std::size_t j = 0; j < dim; ++j)
            load_major.access(0x1000 + (j * dim + i) * 4, 4, true);
    const auto lm = load_major.flushDirty();

    // Both orders write the same 1024 bytes, but the strided (load-
    // major) order evicts each block after only one 4-byte store, so the
    // total dirty-block traffic (write-backs during the run plus the
    // final flush) inflates by ~beta_block / beta_store = 4x — the
    // inflation factor Equation 13 charges load-major loops with.
    const double sm_transfers = static_cast<double>(
        store_major.stats().writebacks + sm.blocks);
    const double lm_transfers = static_cast<double>(
        load_major.stats().writebacks + lm.blocks);
    EXPECT_GE(lm_transfers / sm_transfers, 3.0);
    EXPECT_LE(lm_transfers / sm_transfers, 4.5);
}

TEST(Idempotency, ViolationIntervalMatchesPaperFormula)
{
    // N - n + 1 stores between violations (Section VI-B).
    EXPECT_DOUBLE_EQ(core::violationStoreInterval(100, 100), 1.0);
    EXPECT_DOUBLE_EQ(core::violationStoreInterval(200, 100), 101.0);
    // Double buffering: N = 2n -> n + 1 stores.
    EXPECT_DOUBLE_EQ(core::violationStoreInterval(128, 64), 65.0);
    // Write-back buffer extends the interval (footnote 4).
    EXPECT_DOUBLE_EQ(core::violationStoreInterval(100, 100, 8), 9.0);
}

TEST(Idempotency, CycleIntervalScalesWithStorePeriod)
{
    EXPECT_DOUBLE_EQ(core::violationCycleInterval(110, 100, 50.0),
                     11.0 * 50.0);
}

TEST(Idempotency, Equation15InvertsTheInterval)
{
    // Sizing the buffer for tau_B,opt then recomputing the interval must
    // give back tau_B,opt.
    const double n = 256, tau_store = 40.0, w = 8.0;
    const double tau_opt = 52000.0;
    const double slots =
        core::optimalCircularBufferSize(n, tau_store, tau_opt, w);
    EXPECT_NEAR(core::violationCycleInterval(slots, n, tau_store, w),
                tau_opt, 1e-9 * tau_opt);
}

TEST(Idempotency, BufferNeverSmallerThanArray)
{
    // A tiny optimal period cannot shrink the buffer below the array.
    EXPECT_DOUBLE_EQ(core::optimalCircularBufferSize(128, 10.0, 0.0),
                     128.0);
}

TEST(Idempotency, RecommendedSlotsArePowersOfTwo)
{
    const auto p = core::cortexM0Params();
    const auto slots = core::recommendedBufferSlots(p, 100, 25.0, 8.0);
    EXPECT_GE(slots, 100u);
    EXPECT_EQ(slots & (slots - 1), 0u) << slots;
}

TEST(Idempotency, RejectsBadInputs)
{
    EXPECT_THROW(core::violationStoreInterval(50, 100), FatalError);
    EXPECT_THROW(core::violationStoreInterval(100, 0), FatalError);
    EXPECT_THROW(core::violationCycleInterval(100, 100, 0.0),
                 FatalError);
    EXPECT_THROW(core::optimalCircularBufferSize(0, 1.0, 1.0),
                 FatalError);
}

TEST(Idempotency, TrackerViolationSpacingMatchesFormula)
{
    // Walk a circular buffer of N slots holding an n-element array with
    // the real tracker: read slot (head + n), write slot head, advance.
    // Violations must occur every N - n + 1 stores, as Equation 15's
    // derivation assumes.
    constexpr std::uint64_t n = 12, N = 32;
    arch::IdempotencyTracker tracker(64, 64, 1u << 30);

    std::uint64_t stores = 0;
    std::vector<std::uint64_t> gaps;
    std::uint64_t last_violation = 0;
    for (std::uint64_t step = 0; step < 400; ++step) {
        // Listing 2: read A[(head + i) % N], write A[(head + n + i) % N]
        // — the writes run n slots AHEAD of the reads.
        const std::uint64_t read_addr = (step % N) * 4;
        const std::uint64_t write_addr = ((step + n) % N) * 4;
        // The loop body reads ahead n slots and writes the head slot.
        EXPECT_EQ(tracker.onLoad(read_addr, 4),
                  arch::BackupTrigger::None);
        const auto trig = tracker.onStore(write_addr, 4);
        ++stores;
        if (trig == arch::BackupTrigger::Violation) {
            tracker.reset();
            gaps.push_back(stores - last_violation);
            last_violation = stores;
            // Replay the store against the fresh buffers.
            EXPECT_EQ(tracker.onStore(write_addr, 4),
                      arch::BackupTrigger::None);
        }
    }
    ASSERT_GT(gaps.size(), 3u);
    // Steady-state gaps equal N - n + 1 (the first can differ while the
    // buffer warms up).
    for (std::size_t i = 1; i < gaps.size(); ++i)
        EXPECT_EQ(gaps[i], N - n + 1) << "violation " << i;
}

} // namespace
