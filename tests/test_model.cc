/**
 * @file
 * Unit and property tests for the EH model core (Section III): the
 * energy-balance identity (Equation 1), the closed form of Equation 8,
 * the single-backup form (Equation 12), dead-cycle bounds, and the
 * structural monotonicities the paper's takeaways rest on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hh"
#include "core/params.hh"
#include "core/sweep.hh"
#include "util/panic.hh"

namespace {

using namespace eh;
using core::DeadCycleMode;
using core::Model;
using core::Params;

/** Equation 8 transcribed literally from the paper. */
double
equation8(const Params &p)
{
    const double eps_net = p.execEnergy - p.chargeEnergy;
    const double tau_d = p.backupPeriod / 2.0;
    const double e_b = (p.backupCost - p.chargeEnergy / p.backupBandwidth) *
                       (p.archStateBackup + p.appStateRate * p.backupPeriod);
    const double e_d = eps_net * tau_d;
    const double e_r =
        (p.restoreCost - p.chargeEnergy / p.restoreBandwidth) *
        (p.archStateRestore + p.appRestoreRate * tau_d);
    const double num =
        1.0 - e_d / p.energyBudget - e_r / p.energyBudget;
    const double den = (1.0 + e_b / (eps_net * p.backupPeriod)) *
                       (1.0 - p.chargeEnergy / p.execEnergy);
    return num / den;
}

TEST(Model, MatchesEquation8Literally)
{
    for (double tau_b : {1.0, 5.0, 20.0, 100.0, 1000.0}) {
        for (double omega : {0.0, 0.5, 1.0, 4.0}) {
            Params p = core::illustrativeParams();
            p.backupPeriod = tau_b;
            p.backupCost = omega;
            if (equation8(p) <= 0.0)
                continue; // clamped region: the model reports 0
            EXPECT_NEAR(Model(p).progress(), equation8(p), 1e-12)
                << "tau_B=" << tau_b << " Omega_B=" << omega;
        }
    }
}

TEST(Model, MatchesEquation8WithChargingAndRestore)
{
    Params p = core::illustrativeParams();
    p.chargeEnergy = 0.25;
    p.restoreCost = 0.5;
    p.archStateRestore = 2.0;
    p.appRestoreRate = 0.05;
    p.backupPeriod = 30.0;
    EXPECT_NEAR(Model(p).progress(), equation8(p), 1e-12);
}

TEST(Model, EnergyBalanceHoldsWheneverProgressPositive)
{
    // Equation 1 must balance exactly: E = e_P + n_B e_B + e_D + e_R.
    for (double tau_b : core::logspace(1.0, 5000.0, 25)) {
        Params p = core::illustrativeParams();
        p.backupPeriod = tau_b;
        p.restoreCost = 0.3;
        p.archStateRestore = 1.5;
        const auto b = Model(p).breakdown();
        if (b.progress > 0.0) {
            EXPECT_NEAR(b.residual, 0.0, 1e-9 * p.energyBudget)
                << "tau_B=" << tau_b;
        } else {
            EXPECT_GE(b.residual, 0.0);
        }
    }
}

TEST(Model, ProgressWithinUnitIntervalWithoutCharging)
{
    for (double tau_b : core::logspace(0.1, 1e6, 40)) {
        Params p = core::illustrativeParams();
        p.backupPeriod = tau_b;
        const double prog = Model(p).progress();
        EXPECT_GE(prog, 0.0);
        EXPECT_LE(prog, 1.0) << "tau_B=" << tau_b;
    }
}

TEST(Model, DeadCycleBoundsOrdered)
{
    // Best case >= average >= worst case, for any parameters
    // (Section IV-A2, Figure 4).
    for (double tau_b : core::logspace(1.0, 10000.0, 20)) {
        Params p = core::illustrativeParams();
        p.backupPeriod = tau_b;
        Model m(p);
        const double best = m.progress(DeadCycleMode::BestCase);
        const double avg = m.progress(DeadCycleMode::Average);
        const double worst = m.progress(DeadCycleMode::WorstCase);
        EXPECT_GE(best, avg);
        EXPECT_GE(avg, worst);
    }
}

TEST(Model, VariabilityShrinksWithSmallBackupPeriods)
{
    // Figure 4's first takeaway: the best/worst spread narrows as
    // tau_B approaches 0.
    Params p = core::illustrativeParams();
    auto spread = [&](double tau_b) {
        Model m(Model(p).withBackupPeriod(tau_b).params());
        return m.progress(DeadCycleMode::BestCase) -
               m.progress(DeadCycleMode::WorstCase);
    };
    EXPECT_LT(spread(1.0), spread(10.0));
    EXPECT_LT(spread(10.0), spread(100.0));
}

TEST(Model, ReducingBackupCostAlwaysHelps)
{
    // "Reducing backup cost is always better" (Section IV-A1).
    for (double tau_b : {2.0, 10.0, 50.0, 300.0}) {
        double last = -1.0;
        for (double omega : {4.0, 2.0, 1.0, 0.5, 0.0}) {
            Params p = core::illustrativeParams();
            p.backupPeriod = tau_b;
            p.backupCost = omega;
            const double prog = Model(p).progress();
            EXPECT_GE(prog, last);
            last = prog;
        }
    }
}

TEST(Model, ZeroArchStateMakesProgressMonotoneInBackupPeriod)
{
    // Figure 3: with A_B = 0 there is no sweet spot — progress is
    // monotonically non-increasing in tau_B.
    Params p = core::illustrativeParams();
    p.archStateBackup = 0.0;
    double last = 2.0;
    for (double tau_b : core::logspace(0.01, 10000.0, 50)) {
        const double prog = Model(p).withBackupPeriod(tau_b).progress();
        EXPECT_LE(prog, last + 1e-12) << "tau_B=" << tau_b;
        last = prog;
    }
}

TEST(Model, ZeroArchStateLimitAtTinyPeriods)
{
    // With A_B = 0 the backup rate e_B / tau_B is the constant
    // Omega_B * alpha_B, so lim tau_B -> 0 of p is
    // 1 / (1 + Omega_B alpha_B / eps) — which reaches the paper's
    // "p -> 1" statement as the per-cycle backup cost vanishes
    // (Section IV-A1).
    Params p = core::illustrativeParams();
    p.archStateBackup = 0.0;
    const double expected =
        1.0 / (1.0 + p.backupCost * p.appStateRate / p.execEnergy);
    EXPECT_NEAR(Model(p).withBackupPeriod(1e-7).progress(), expected,
                1e-6);

    p.appStateRate = 1e-9; // negligible application state
    EXPECT_NEAR(Model(p).withBackupPeriod(1e-7).progress(), 1.0, 1e-6);
}

TEST(Model, ChargingIncreasesProgress)
{
    Params p = core::illustrativeParams();
    p.backupPeriod = 20.0;
    const double base = Model(p).progress();
    p.chargeEnergy = 0.3;
    EXPECT_GT(Model(p).progress(), base);
}

TEST(Model, ChargingCanPushProgressAboveOne)
{
    // As epsilon_C approaches epsilon, p grows without bound
    // (Section III).
    Params p = core::illustrativeParams();
    p.backupPeriod = 5.0;
    p.backupCost = 0.8; // stays above epsilon_C / sigma_B
    p.chargeEnergy = 0.6;
    EXPECT_GT(Model(p).progress(), 1.0);
}

TEST(Model, SingleBackupMatchesEquation12)
{
    Params p = core::illustrativeParams();
    p.chargeEnergy = 0.2;
    p.restoreCost = 0.4;
    p.archStateRestore = 3.0;
    const double eff_b =
        p.backupCost - p.chargeEnergy / p.backupBandwidth;
    const double e_r =
        (p.restoreCost - p.chargeEnergy / p.restoreBandwidth) *
        p.archStateRestore;
    const double num = 1.0 -
                       eff_b * p.archStateBackup / p.energyBudget -
                       e_r / p.energyBudget;
    const double den =
        (1.0 + eff_b * p.appStateRate /
                   (p.execEnergy - p.chargeEnergy)) *
        (1.0 - p.chargeEnergy / p.execEnergy);
    EXPECT_NEAR(Model(p).singleBackupProgress(), num / den, 1e-12);
}

TEST(Model, SingleBackupIsGeneralModelAtExtremes)
{
    // Equation 12 == the general solver with tau_B = tau_P, tau_D = 0.
    Params p = core::illustrativeParams();
    p.restoreCost = 0.2;
    p.archStateRestore = 2.0;
    const double single = Model(p).singleBackupProgress();
    // Find tau_B = tau_P self-consistently by fixed-point iteration on
    // the general model with best-case dead cycles.
    double tau = 50.0;
    for (int i = 0; i < 200; ++i) {
        Model m = Model(p).withBackupPeriod(tau);
        const double tau_p = m.progressCycles(0.0);
        if (std::abs(tau_p - tau) < 1e-10)
            break;
        tau = tau_p;
    }
    const double general =
        Model(p).withBackupPeriod(tau).progressAt(0.0);
    EXPECT_NEAR(single, general, 1e-6);
}

TEST(Model, InfeasiblePeriodYieldsZeroProgress)
{
    Params p = core::illustrativeParams();
    p.backupPeriod = 300.0; // dead energy alone (150) > E? no: E=100
    // average tau_D = 150 cycles at eps 1 = 150 > E = 100.
    EXPECT_EQ(Model(p).progress(), 0.0);
    EXPECT_EQ(Model(p).breakdown().progressCycles, 0.0);
}

TEST(Model, BreakdownComponentsNonNegative)
{
    for (double tau_b : core::logspace(1.0, 1e5, 30)) {
        Params p = core::illustrativeParams();
        p.backupPeriod = tau_b;
        p.restoreCost = 0.2;
        p.archStateRestore = 1.0;
        const auto b = Model(p).breakdown();
        EXPECT_GE(b.progressCycles, 0.0);
        EXPECT_GE(b.backupEnergy, 0.0);
        EXPECT_GE(b.deadEnergy, 0.0);
        EXPECT_GE(b.restoreEnergy, 0.0);
    }
}

TEST(Model, WithersPreserveOtherParams)
{
    const Params p = core::illustrativeParams();
    const Model m(p);
    const Model m2 = m.withBackupPeriod(42.0).withAppStateRate(0.7);
    EXPECT_EQ(m2.params().backupPeriod, 42.0);
    EXPECT_EQ(m2.params().appStateRate, 0.7);
    EXPECT_EQ(m2.params().energyBudget, p.energyBudget);
    EXPECT_EQ(m2.params().backupCost, p.backupCost);
}

TEST(Params, ValidationCatchesEveryDomainViolation)
{
    auto expectInvalid = [](auto mutate) {
        Params p = core::illustrativeParams();
        mutate(p);
        EXPECT_THROW(p.validate(), FatalError);
        EXPECT_FALSE(p.valid());
    };
    expectInvalid([](Params &p) { p.energyBudget = 0.0; });
    expectInvalid([](Params &p) { p.energyBudget = -5.0; });
    expectInvalid([](Params &p) { p.execEnergy = 0.0; });
    expectInvalid([](Params &p) { p.chargeEnergy = -1.0; });
    expectInvalid([](Params &p) { p.chargeEnergy = p.execEnergy; });
    expectInvalid([](Params &p) { p.backupPeriod = 0.0; });
    expectInvalid([](Params &p) { p.backupBandwidth = 0.0; });
    expectInvalid([](Params &p) { p.backupCost = -0.1; });
    expectInvalid([](Params &p) { p.archStateBackup = -1.0; });
    expectInvalid([](Params &p) { p.appStateRate = -1.0; });
    expectInvalid([](Params &p) { p.restoreBandwidth = 0.0; });
    expectInvalid([](Params &p) { p.restoreCost = -0.1; });
    expectInvalid([](Params &p) { p.archStateRestore = -1.0; });
    expectInvalid([](Params &p) { p.appRestoreRate = -1.0; });
}

TEST(Params, PresetsAreValid)
{
    EXPECT_NO_THROW(core::illustrativeParams().validate());
    EXPECT_NO_THROW(core::msp430Params().validate());
    EXPECT_NO_THROW(core::msp430Params(0.125).validate());
    EXPECT_NO_THROW(core::cortexM0Params().validate());
    EXPECT_NO_THROW(core::nvpParams().validate());
}

TEST(Params, Msp430EnergyMatchesPaperMeasurements)
{
    const Params p = core::msp430Params();
    // 1.05 mW at 16 MHz = 65.625 pJ per cycle.
    EXPECT_NEAR(p.execEnergy, 65.625, 1e-9);
    // Load/store power 1.2 mW -> 75 pJ per byte at 1 byte/cycle.
    EXPECT_NEAR(p.backupCost, 75.0, 1e-9);
    // A 0.25 s active period holds 4M cycles of execution energy.
    EXPECT_NEAR(p.energyBudget, 65.625 * 4.0e6, 1.0);
}

TEST(Params, DescribeMentionsEveryParameter)
{
    const auto text = core::illustrativeParams().describe();
    for (const char *token :
         {"E=", "eps=", "epsC=", "tauB=", "sigmaB=", "OmegaB=", "A_B=",
          "alphaB=", "sigmaR=", "OmegaR=", "A_R=", "alphaR="}) {
        EXPECT_NE(text.find(token), std::string::npos) << token;
    }
}

} // namespace
