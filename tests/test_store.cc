/**
 * @file
 * Crash-point injection suite for the durable segmented result store
 * (explore/store.hh, docs/STORAGE.md). The centerpiece sweeps damage
 * across *every byte position*: segments truncated at each byte
 * boundary and bit-flipped at each byte must still serve every intact
 * record, quarantine (never delete) the damaged ranges, and never take
 * the process down. On top of that: kill -9 durability via fork(),
 * compaction crash states and idempotence, sidecar-index corruption
 * fallback, store locking, legacy JSONL migration, fsck/repair, and a
 * truncation fuzz over the quarantine strike log.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "explore/cache.hh"
#include "explore/store.hh"
#include "util/fsio.hh"
#include "util/panic.hh"

#ifndef _WIN32
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace {

using namespace eh;
using namespace eh::explore;
namespace fs = std::filesystem;

/** A unique scratch directory, removed when the test ends. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
    {
        root = fs::temp_directory_path() / ("eh_store_test_" + tag);
        fs::remove_all(root);
        fs::create_directories(root);
    }
    ~ScratchDir() { fs::remove_all(root); }
    std::string str() const { return root.string(); }

  private:
    fs::path root;
};

JobSpec
sampleSpec(std::uint64_t i)
{
    JobSpec spec("store");
    spec.set("cell", i).set("x", 0.5 * static_cast<double>(i));
    return spec;
}

StoreRecord
sampleRecord(std::uint64_t i, const char *tag = "v1")
{
    const JobSpec spec = sampleSpec(i);
    StoreRecord rec;
    rec.canonical = spec.canonical();
    rec.hash = spec.hash();
    rec.seed = 7;
    rec.result.set("y", 2.0 * static_cast<double>(i))
        .set("tag", std::string(tag));
    return rec;
}

/** Read one file fully (asserts it exists). */
std::string
slurp(const std::string &path)
{
    std::string bytes;
    EXPECT_TRUE(readFileBytes(path, bytes)) << path;
    return bytes;
}

std::string
overwrite(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
}

/** The single segment file of a one-segment store. */
std::string
onlySegment(const std::string &store_dir)
{
    std::string found;
    for (const auto &entry : fs::directory_iterator(store_dir)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".ehseg") == 0) {
            EXPECT_TRUE(found.empty()) << "more than one segment";
            found = entry.path().string();
        }
    }
    EXPECT_FALSE(found.empty());
    return found;
}

TEST(StoreCodec, PayloadRoundTripsEveryField)
{
    StoreRecord rec = sampleRecord(3);
    rec.result.setStatus(JobStatus::Timeout, "deadline \"exceeded\"\n");
    const std::string payload = SegmentStore::encodePayload(rec);
    StoreRecord back;
    ASSERT_TRUE(SegmentStore::decodePayload(payload, back));
    EXPECT_EQ(back.canonical, rec.canonical);
    EXPECT_EQ(back.hash, rec.hash);
    EXPECT_EQ(back.seed, rec.seed);
    EXPECT_EQ(back.result.fields(), rec.result.fields());
    EXPECT_EQ(back.result.status(), JobStatus::Timeout);
    EXPECT_EQ(back.result.error(), rec.result.error());
}

TEST(StoreCodec, TruncatedPayloadNeverDecodes)
{
    const std::string payload =
        SegmentStore::encodePayload(sampleRecord(11));
    StoreRecord out;
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
        EXPECT_FALSE(
            SegmentStore::decodePayload(payload.substr(0, cut), out))
            << "cut at " << cut;
    }
    EXPECT_FALSE(SegmentStore::decodePayload(payload + "x", out))
        << "trailing bytes must be rejected";
    ASSERT_TRUE(SegmentStore::decodePayload(payload, out));
}

TEST(StoreCodec, ScanRecoversAllFramesFromCleanBytes)
{
    std::string bytes;
    for (std::uint64_t i = 0; i < 5; ++i)
        bytes += SegmentStore::encodeFrame(sampleRecord(i));
    std::size_t records = 0, corrupt = 0;
    SegmentStore::scanFrames(
        bytes,
        [&](std::uint64_t, std::uint32_t, const StoreRecord &) {
            ++records;
        },
        [&](std::uint64_t, std::uint64_t, const std::string &) {
            ++corrupt;
        });
    EXPECT_EQ(records, 5u);
    EXPECT_EQ(corrupt, 0u);
}

TEST(StoreCrashPoints, TruncationAtEveryByteServesIntactPrefix)
{
    std::vector<std::size_t> bounds{0};
    std::string bytes;
    for (std::uint64_t i = 0; i < 4; ++i) {
        bytes += SegmentStore::encodeFrame(sampleRecord(i));
        bounds.push_back(bytes.size());
    }
    for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
        // Frames wholly inside [0, cut) must all be served.
        std::size_t whole = 0;
        while (whole + 1 < bounds.size() && bounds[whole + 1] <= cut)
            ++whole;
        std::size_t records = 0;
        std::uint64_t lost = 0;
        SegmentStore::scanFrames(
            bytes.substr(0, cut),
            [&](std::uint64_t, std::uint32_t, const StoreRecord &) {
                ++records;
            },
            [&](std::uint64_t, std::uint64_t count, const std::string &) {
                lost += count;
            });
        EXPECT_EQ(records, whole) << "cut at " << cut;
        EXPECT_EQ(lost, cut - bounds[whole]) << "cut at " << cut;
    }
}

TEST(StoreCrashPoints, BitFlipAtEveryByteNeverLosesOtherFrames)
{
    std::vector<std::size_t> bounds{0};
    std::string bytes;
    for (std::uint64_t i = 0; i < 4; ++i) {
        bytes += SegmentStore::encodeFrame(sampleRecord(i));
        bounds.push_back(bytes.size());
    }
    for (std::size_t at = 0; at < bytes.size(); ++at) {
        std::string mutated = bytes;
        mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
        std::set<std::string> served;
        std::size_t corrupt = 0;
        SegmentStore::scanFrames(
            mutated,
            [&](std::uint64_t, std::uint32_t, const StoreRecord &rec) {
                served.insert(rec.canonical);
            },
            [&](std::uint64_t, std::uint64_t, const std::string &) {
                ++corrupt;
            });
        // The flipped byte lives in exactly one frame; every *other*
        // frame must still be served. (The damaged frame itself may
        // coincidentally still parse only if the flip landed in a spot
        // the CRC covers — it cannot, so expect it quarantined.)
        std::size_t hit = 0;
        while (bounds[hit + 1] <= at)
            ++hit;
        for (std::uint64_t i = 0; i < 4; ++i) {
            if (i == hit)
                continue;
            EXPECT_TRUE(served.count(sampleRecord(i).canonical))
                << "flip at " << at << " lost frame " << i;
        }
        EXPECT_GE(corrupt, 1u) << "flip at " << at;
        EXPECT_EQ(served.size(), 3u) << "flip at " << at;
    }
}

TEST(SegmentStore, AppendLookupAndNewestWins)
{
    ScratchDir dir("newest");
    const std::string root = dir.str() + "/s.ehc";
    {
        SegmentStore store(root);
        store.append(sampleRecord(1, "old"));
        store.append(sampleRecord(2, "only"));
        store.append(sampleRecord(1, "new")); // supersedes cell 1
        JobResult out;
        ASSERT_TRUE(store.lookup(sampleRecord(1).canonical,
                                 sampleRecord(1).hash, 7, out));
        EXPECT_EQ(out.str("tag"), "new");
        EXPECT_FALSE(store.lookup(sampleRecord(1).canonical,
                                  sampleRecord(1).hash, 8, out))
            << "a different campaign seed must miss";
    }
    // Reopen: the duplicate frames are both on disk; newest still wins.
    SegmentStore store(root);
    EXPECT_EQ(store.openStats().records, 3u);
    JobResult out;
    ASSERT_TRUE(store.lookup(sampleRecord(1).canonical,
                             sampleRecord(1).hash, 7, out));
    EXPECT_EQ(out.str("tag"), "new");
}

TEST(SegmentStore, SealedSegmentsWarmLoadThroughTheIndex)
{
    ScratchDir dir("index");
    const std::string root = dir.str() + "/s.ehc";
    StoreConfig cfg;
    cfg.maxSegmentBytes = 256; // force frequent seals
    {
        SegmentStore store(root, cfg);
        for (std::uint64_t i = 0; i < 20; ++i)
            store.append(sampleRecord(i));
    }
    SegmentStore store(root);
    const auto &stats = store.openStats();
    EXPECT_EQ(stats.records, 20u);
    EXPECT_GE(stats.segments, 2u);
    EXPECT_GE(stats.indexedSegments, 1u);
    // Lazy index slots decode on first touch.
    for (std::uint64_t i = 0; i < 20; ++i) {
        JobResult out;
        ASSERT_TRUE(store.lookup(sampleRecord(i).canonical,
                                 sampleRecord(i).hash, 7, out))
            << i;
        EXPECT_EQ(out.num("y"), 2.0 * static_cast<double>(i));
    }
}

TEST(SegmentStore, CorruptIndexFallsBackToFrameScan)
{
    ScratchDir dir("idxcorrupt");
    const std::string root = dir.str() + "/s.ehc";
    {
        SegmentStore store(root);
        for (std::uint64_t i = 0; i < 6; ++i)
            store.append(sampleRecord(i));
        store.seal();
    }
    // Trash the sidecar; the segment itself is intact.
    std::string idx;
    for (const auto &entry : fs::directory_iterator(root)) {
        if (entry.path().extension() == ".ehidx")
            idx = entry.path().string();
    }
    ASSERT_FALSE(idx.empty());
    std::string bytes = slurp(idx);
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
    overwrite(idx, bytes);

    SegmentStore store(root);
    EXPECT_EQ(store.openStats().records, 6u);
    EXPECT_EQ(store.openStats().corruptionEvents, 0u)
        << "segment bytes are fine; only the sidecar was damaged";
    JobResult out;
    EXPECT_TRUE(store.lookup(sampleRecord(3).canonical,
                             sampleRecord(3).hash, 7, out));
}

TEST(SegmentStore, CompactionMergesDedupsAndDropsCorruption)
{
    ScratchDir dir("compact");
    const std::string root = dir.str() + "/s.ehc";
    StoreConfig cfg;
    cfg.maxSegmentBytes = 256;
    {
        SegmentStore store(root, cfg);
        for (std::uint64_t i = 0; i < 10; ++i)
            store.append(sampleRecord(i, "old"));
        for (std::uint64_t i = 0; i < 10; ++i)
            store.append(sampleRecord(i, "new"));
    }
    {
        // Flip a byte in the middle of the first (sealed) segment.
        const std::string seg =
            root + "/" + SegmentStore::segmentName(1);
        std::string bytes = slurp(seg);
        bytes[20] = static_cast<char>(bytes[20] ^ 0x01);
        overwrite(seg, bytes);
    }
    {
        SegmentStore store(root);
        const CompactionReport report = store.compact();
        EXPECT_GE(report.segmentsBefore, 2u);
        EXPECT_EQ(report.segmentsAfter, 1u);
        EXPECT_EQ(report.recordsAfter, 10u);
        EXPECT_GE(report.corruptionEvents, 1u);
        EXPECT_LT(report.bytesAfter, report.bytesBefore);
        for (std::uint64_t i = 0; i < 10; ++i) {
            JobResult out;
            ASSERT_TRUE(store.lookup(sampleRecord(i).canonical,
                                     sampleRecord(i).hash, 7, out))
                << i;
            EXPECT_EQ(out.str("tag"), "new");
        }
        // Idempotent: compacting a compacted store changes nothing.
        const CompactionReport again = store.compact();
        EXPECT_EQ(again.recordsAfter, 10u);
        EXPECT_EQ(again.corruptionEvents, 0u);
    }
    // Cold reopen: the compacted segment warm-loads via its index and
    // still serves every live record, newest wins.
    SegmentStore reopened(root);
    EXPECT_EQ(reopened.openStats().indexedSegments, 1u);
    EXPECT_EQ(reopened.openStats().records, 10u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        JobResult out;
        ASSERT_TRUE(reopened.lookup(sampleRecord(i).canonical,
                                    sampleRecord(i).hash, 7, out))
            << i;
        EXPECT_EQ(out.str("tag"), "new");
    }
}

TEST(SegmentStore, CompactionCrashStatesConvergeOnReopen)
{
    ScratchDir dir("compactcrash");
    const std::string root = dir.str() + "/s.ehc";
    StoreConfig cfg;
    cfg.maxSegmentBytes = 256;
    {
        SegmentStore store(root, cfg);
        for (std::uint64_t i = 0; i < 8; ++i)
            store.append(sampleRecord(i));
    }

    // Crash state A: compact.tmp written but never renamed. Reopen must
    // clean it up and serve everything.
    overwrite(root + "/compact.tmp", "half-written compaction output");
    {
        SegmentStore store(root);
        EXPECT_EQ(store.openStats().records, 8u);
        EXPECT_FALSE(fs::exists(root + "/compact.tmp"));
    }

    // Crash state B: the compacted segment was published (renamed into
    // place) but the inputs were not yet deleted. Reopen sees every
    // record twice; newest-wins dedup converges to the same live set.
    std::vector<std::string> segs;
    for (const auto &entry : fs::directory_iterator(root)) {
        if (entry.path().extension() == ".ehseg")
            segs.push_back(entry.path().string());
    }
    ASSERT_GE(segs.size(), 2u);
    std::string merged;
    for (const auto &seg : segs)
        merged += slurp(seg);
    overwrite(root + "/" + SegmentStore::segmentName(99), merged);
    {
        SegmentStore store(root);
        std::size_t live = 0;
        store.forEachLive([&](const StoreRecord &) { ++live; });
        EXPECT_EQ(live, 8u) << "duplicates must dedup, not double";
        for (std::uint64_t i = 0; i < 8; ++i) {
            JobResult out;
            EXPECT_TRUE(store.lookup(sampleRecord(i).canonical,
                                     sampleRecord(i).hash, 7, out));
        }
        // Finishing the interrupted job squeezes everything back down.
        const CompactionReport report = store.compact();
        EXPECT_EQ(report.segmentsAfter, 1u);
        EXPECT_EQ(report.recordsAfter, 8u);
    }
}

TEST(SegmentStore, SecondWriterFailsLoudly)
{
    ScratchDir dir("lock");
    const std::string root = dir.str() + "/s.ehc";
    SegmentStore first(root);
    first.append(sampleRecord(1));
    EXPECT_THROW(SegmentStore second(root), FatalError);
    StoreConfig ro;
    ro.readOnly = true;
    EXPECT_THROW(SegmentStore reader(root, ro), FatalError)
        << "a reader must not share a store with a live writer";
}

TEST(SegmentStore, ConcurrentReadersShareTheLock)
{
    ScratchDir dir("rolock");
    const std::string root = dir.str() + "/s.ehc";
    {
        SegmentStore store(root);
        store.append(sampleRecord(1));
    }
    StoreConfig ro;
    ro.readOnly = true;
    SegmentStore a(root, ro);
    SegmentStore b(root, ro);
    JobResult out;
    EXPECT_TRUE(a.lookup(sampleRecord(1).canonical,
                         sampleRecord(1).hash, 7, out));
    EXPECT_TRUE(b.lookup(sampleRecord(1).canonical,
                         sampleRecord(1).hash, 7, out));
}

#ifndef _WIN32
TEST(SegmentStore, AcknowledgedAppendsSurviveKillNine)
{
    ScratchDir dir("kill9");
    const std::string root = dir.str() + "/s.ehc";
    const int pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: append records, then die without any teardown —
        // no fsync, no destructor, no flush. raise(SIGKILL) cannot be
        // caught, so this is exactly what `kill -9` leaves behind.
        {
            SegmentStore store(root);
            for (std::uint64_t i = 0; i < 50; ++i)
                store.append(sampleRecord(i));
            raise(SIGKILL);
        }
        _exit(99); // not reached
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Every acknowledged append must be readable: appends go through
    // write(2), so the bytes sit in the page cache regardless of how
    // the process died. (fsync bounds power loss, not process death.)
    SegmentStore store(root);
    EXPECT_EQ(store.openStats().records, 50u);
    EXPECT_EQ(store.openStats().corruptionEvents, 0u);
    for (std::uint64_t i = 0; i < 50; ++i) {
        JobResult out;
        EXPECT_TRUE(store.lookup(sampleRecord(i).canonical,
                                 sampleRecord(i).hash, 7, out))
            << i;
    }
}
#endif

TEST(SegmentStore, FsckDetectsAndRepairsDamage)
{
    ScratchDir dir("fsck");
    const std::string root = dir.str() + "/s.ehc";
    {
        SegmentStore store(root);
        for (std::uint64_t i = 0; i < 6; ++i)
            store.append(sampleRecord(i));
    }
    {
        SegmentStore store(root);
        EXPECT_TRUE(store.fsck(false).clean());
    }
    const std::string seg = onlySegment(root);
    std::string bytes = slurp(seg);
    bytes[30] = static_cast<char>(bytes[30] ^ 0x10);
    overwrite(seg, bytes);

    SegmentStore store(root);
    FsckReport report = store.fsck(false);
    EXPECT_FALSE(report.clean());
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.intactFrames, 5u);

    report = store.fsck(true);
    EXPECT_TRUE(report.repaired);
    EXPECT_EQ(report.quarantinedFiles, 1u);
    EXPECT_TRUE(store.fsck(false).clean());
    // The damaged bytes were preserved as evidence, not deleted.
    std::size_t quarantineFiles = 0;
    for (const auto &entry : fs::directory_iterator(root)) {
        if (entry.path().filename().string().rfind("quarantine-", 0) ==
            0) {
            ++quarantineFiles;
        }
    }
    EXPECT_EQ(quarantineFiles, 1u);
    std::size_t live = 0;
    store.forEachLive([&](const StoreRecord &) { ++live; });
    EXPECT_EQ(live, 5u);
}

TEST(SegmentStore, ExportedRecordsRoundTripThroughJsonl)
{
    ScratchDir dir("roundtrip");
    const std::string root = dir.str() + "/s.ehc";
    SegmentStore store(root);
    StoreRecord failed = sampleRecord(5);
    failed.result.setStatus(JobStatus::Failed, "boom \"quoted\"");
    store.append(sampleRecord(1));
    store.append(failed);

    std::vector<StoreRecord> back;
    store.forEachLive([&](const StoreRecord &rec) {
        const std::string line = ResultCache::encodeRecordRaw(
            rec.canonical, rec.hash, rec.seed, rec.result);
        StoreRecord decoded;
        ASSERT_TRUE(ResultCache::decodeRecord(line, decoded.canonical,
                                              decoded.hash,
                                              decoded.seed,
                                              decoded.result));
        back.push_back(decoded);
    });
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].canonical, sampleRecord(1).canonical);
    EXPECT_EQ(back[0].result.fields(),
              sampleRecord(1).result.fields());
    EXPECT_EQ(back[1].result.status(), JobStatus::Failed);
    EXPECT_EQ(back[1].result.error(), "boom \"quoted\"");
}

TEST(ResultCache, LegacyJsonlMigratesOnceAndIdempotently)
{
    ScratchDir dir("migrate");
    const std::string legacy = dir.str() + "/test.jsonl";
    {
        std::ofstream out(legacy);
        for (std::uint64_t i = 0; i < 4; ++i) {
            const StoreRecord rec = sampleRecord(i);
            out << ResultCache::encodeRecordRaw(rec.canonical, rec.hash,
                                                rec.seed, rec.result)
                << '\n';
        }
        out << "garbage that is not a record\n";
        const StoreRecord torn = sampleRecord(9);
        out << ResultCache::encodeRecordRaw(torn.canonical, torn.hash,
                                            torn.seed, torn.result)
                   .substr(0, 25); // torn tail, no newline
    }
    {
        ResultCache cache(dir.str(), "test");
        EXPECT_EQ(cache.migratedRecords(), 4u);
        EXPECT_EQ(cache.loadedRecords(), 4u);
        JobResult out;
        EXPECT_TRUE(cache.lookup(sampleSpec(2), 7, out));
        EXPECT_EQ(out.num("y"), 4.0);
    }
    EXPECT_FALSE(fs::exists(legacy)) << "migration renames the jsonl";
    EXPECT_TRUE(fs::exists(legacy + ".migrated"));

    // A second open serves from segments; nothing migrates again.
    ResultCache cache(dir.str(), "test");
    EXPECT_EQ(cache.migratedRecords(), 0u);
    EXPECT_EQ(cache.loadedRecords(), 4u);
}

TEST(ResultCache, ResurrectedJsonlDoesNotDuplicateRecords)
{
    ScratchDir dir("remigrate");
    const std::string legacy = dir.str() + "/test.jsonl";
    auto writeLegacy = [&] {
        std::ofstream out(legacy);
        for (std::uint64_t i = 0; i < 3; ++i) {
            const StoreRecord rec = sampleRecord(i);
            out << ResultCache::encodeRecordRaw(rec.canonical, rec.hash,
                                                rec.seed, rec.result)
                << '\n';
        }
    };
    writeLegacy();
    {
        ResultCache cache(dir.str(), "test");
        EXPECT_EQ(cache.migratedRecords(), 3u);
    }
    // Simulate a crash between the appends and the rename: the jsonl
    // reappears while the segments already hold its records.
    writeLegacy();
    {
        ResultCache cache(dir.str(), "test");
        EXPECT_EQ(cache.migratedRecords(), 0u)
            << "already-present records must be skipped";
        EXPECT_EQ(cache.loadedRecords(), 3u);
    }
}

TEST(QuarantineLog, TruncationFuzzNeverMiscountsStrikes)
{
    ScratchDir dir("qfuzz");
    std::vector<JobSpec> specs;
    for (int i = 0; i < 3; ++i) {
        JobSpec s("poison");
        s.set("cell", i);
        specs.push_back(s);
    }
    {
        QuarantineLog log(dir.str(), "fuzz", 2);
        for (const auto &spec : specs) {
            log.recordFailure(spec);
            log.recordFailure(spec);
        }
        for (const auto &spec : specs)
            EXPECT_TRUE(log.poisoned(spec));
    }
    const std::string path = dir.str() + "/fuzz.quarantine";
    const std::string bytes = slurp(path);

    // Every line is CRC-framed, so a copy truncated at *any* byte
    // counts exactly the complete lines as strikes against real cells:
    // a torn tail can skew things by at most the one unflushed line
    // (skipped, or in a degenerate prefix parsed as a legacy line for a
    // cell that does not exist), and never a phantom strike against a
    // real cell.
    std::size_t newlines = 0;
    for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
        const std::string prefixDir = dir.str() + "/cut";
        fs::create_directories(prefixDir);
        overwrite(prefixDir + "/fuzz.quarantine",
                  bytes.substr(0, cut));
        QuarantineLog log(prefixDir, "fuzz", 2);
        std::size_t strikes = 0;
        for (const auto &spec : specs)
            strikes += log.strikes(spec);
        // A cut exactly at a newline leaves a complete (unterminated)
        // final line, which passes its CRC and rightly counts.
        const bool wholeLine =
            cut < bytes.size() && bytes[cut] == '\n';
        EXPECT_EQ(strikes, newlines + (wholeLine ? 1u : 0u))
            << "cut at " << cut;
        EXPECT_LE(log.skippedLines(), 1u) << "cut at " << cut;
        if (wholeLine)
            ++newlines;
    }

    // A bit flip inside a framed line's canonical fails the CRC: the
    // line is skipped (with a counted warning), not miscounted.
    std::string flipped = bytes;
    flipped[flipped.size() - 2] =
        static_cast<char>(flipped[flipped.size() - 2] ^ 0x20);
    overwrite(path, flipped);
    QuarantineLog log(dir.str(), "fuzz", 2);
    std::size_t strikes = 0;
    for (const auto &spec : specs)
        strikes += log.strikes(spec);
    EXPECT_EQ(strikes, 5u);
    EXPECT_EQ(log.skippedLines(), 1u);
}

TEST(QuarantineLog, LegacyUnframedLinesStillCount)
{
    ScratchDir dir("qlegacy");
    JobSpec spec("poison");
    spec.set("cell", 1);
    {
        std::ofstream out(dir.str() + "/old.quarantine");
        out << spec.canonical() << '\n' << spec.canonical() << '\n';
    }
    QuarantineLog log(dir.str(), "old", 2);
    EXPECT_EQ(log.strikes(spec), 2u);
    EXPECT_TRUE(log.poisoned(spec));
    EXPECT_EQ(log.skippedLines(), 0u);
    // New strikes append framed lines alongside the legacy ones.
    log.recordFailure(spec);
    QuarantineLog reloaded(dir.str(), "old", 2);
    EXPECT_EQ(reloaded.strikes(spec), 3u);
}

} // namespace
