/**
 * @file
 * Randomized fault-injection fuzzing of the full stack: workloads run on
 * harvested supplies built from random trace shapes, capacitor sizes and
 * harvest strengths, so power failures land at arbitrary instruction
 * boundaries (including inside backups and restores). Results must stay
 * exactly equal to the C++ reference for every seed. Also covers the
 * simulator's runaway-period guard.
 */

#include <gtest/gtest.h>

#include "energy/supply.hh"
#include "energy/trace.hh"
#include "energy/transducer.hh"
#include "runtime/clank.hh"
#include "runtime/dino.hh"
#include "sim/simulator.hh"
#include "util/panic.hh"
#include "util/random.hh"
#include "workloads/workload.hh"

namespace {

using namespace eh;

class FuzzSeed : public ::testing::TestWithParam<int>
{
};

energy::HarvestingSupply
randomSupply(Rng &rng)
{
    // Random trace shape, capacitor size and harvest strength. The
    // transducer is sized so active periods land between roughly 5k and
    // 200k cycles — long enough to progress, short enough to fail often.
    auto traces =
        energy::makePaperTraces(rng.next(), 20'000'000);
    const auto pick = rng.nextBelow(3);
    energy::Transducer tx(rng.nextDouble(0.3, 0.9),
                          rng.nextDouble(1500.0, 6000.0), 16.0e6);
    energy::Capacitor cap(rng.nextDouble(0.2e-6, 1.5e-6), 3.6, 3.0,
                          2.2);
    return energy::HarvestingSupply(
        std::move(traces[pick]), tx, cap);
}

TEST_P(FuzzSeed, ClankSurvivesRandomHarvestedSupplies)
{
    Rng rng(0xF022 + static_cast<std::uint64_t>(GetParam()) * 7919);
    const char *names[] = {"crc", "qsort", "sha", "rijndael", "lzfx"};
    const std::string workload = names[rng.nextBelow(5)];
    const auto w =
        workloads::makeWorkload(workload, workloads::nonvolatileLayout());

    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.costs = arch::CostModel::cortexM0();
    cfg.maxActivePeriods = 60000;

    auto supply = randomSupply(rng);
    runtime::Clank policy({});
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();

    ASSERT_TRUE(stats.finished)
        << workload << " seed " << GetParam() << ": " << stats.summary();
    for (std::size_t i = 0; i < w.resultAddrs.size(); ++i) {
        ASSERT_EQ(s.resultWord(w.resultAddrs[i]), w.expected[i])
            << workload << " seed " << GetParam() << " word " << i;
    }
}

TEST_P(FuzzSeed, DinoSurvivesRandomHarvestedSupplies)
{
    Rng rng(0xD120 + static_cast<std::uint64_t>(GetParam()) * 104729);
    const char *names[] = {"sense", "midi", "ds", "ar"};
    const std::string workload = names[rng.nextBelow(4)];
    const auto w =
        workloads::makeWorkload(workload, workloads::volatileLayout());

    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    cfg.maxActivePeriods = 60000;

    // Larger capacitors for the volatile platform: each period must fit
    // a payload restore plus a payload backup (~1M pJ round trip).
    auto traces = energy::makePaperTraces(rng.next(), 20'000'000);
    energy::Transducer tx(rng.nextDouble(0.4, 0.9),
                          rng.nextDouble(1000.0, 3000.0), 16.0e6);
    energy::Capacitor cap(rng.nextDouble(1.0e-6, 2.5e-6), 3.6, 3.0,
                          2.2);
    energy::HarvestingSupply supply(
        std::move(traces[rng.nextBelow(3)]), tx, cap);

    runtime::Dino policy({.sramUsedBytes = cfg.sramUsedBytes,
                          .chargeDirtyBytesOnly = true});
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();

    ASSERT_TRUE(stats.finished)
        << workload << " seed " << GetParam() << ": " << stats.summary();
    for (std::size_t i = 0; i < w.resultAddrs.size(); ++i) {
        ASSERT_EQ(s.resultWord(w.resultAddrs[i]), w.expected[i])
            << workload << " seed " << GetParam() << " word " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Range(0, 10));

TEST(SimulatorGuards, RunawayPeriodPanics)
{
    // A program that never halts with effectively infinite energy must
    // hit the per-period instruction cap instead of hanging.
    const auto w = workloads::makeWorkload(
        "counter", workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.maxInstructionsPerPeriod = 10000;
    runtime::Dino policy({.sramUsedBytes = 64});
    energy::ConstantSupply supply(1.0e18);
    sim::Simulator s(w.program, policy, supply, cfg);
    EXPECT_THROW(s.run(), PanicError);
}

} // namespace
