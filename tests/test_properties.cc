/**
 * @file
 * Randomized property tests over the model's full parameter domain.
 * Each seed draws a random (valid) Params instance and checks the
 * structural invariants the paper's reasoning relies on:
 *
 *  - energy balance (Equation 1) holds exactly;
 *  - p ∈ [0, 1] without charging, p >= 0 always;
 *  - dead-cycle ordering best >= average >= worst;
 *  - monotonicity: p never improves when any cost parameter grows;
 *  - tau_B,opt(wc) < tau_B,opt (A_B > 0) and both match numeric argmax
 *    under the derivation assumptions;
 *  - the single-backup form is the general model's fixed point.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hh"
#include "core/optimum.hh"
#include "core/params.hh"
#include "util/random.hh"

namespace {

using namespace eh;
using core::DeadCycleMode;
using core::Model;
using core::Params;

/** Draw a random valid parameter set; charging only when allowed. */
Params
randomParams(Rng &rng, bool allow_charging, bool allow_restore)
{
    Params p;
    p.energyBudget = rng.nextDouble(10.0, 1.0e7);
    p.execEnergy = rng.nextDouble(0.1, 200.0);
    p.chargeEnergy =
        allow_charging ? rng.nextDouble(0.0, 0.8) * p.execEnergy : 0.0;
    p.backupPeriod = std::exp(rng.nextDouble(0.0, std::log(1e6)));
    p.backupBandwidth = rng.nextDouble(0.1, 16.0);
    // Keep the effective backup cost non-negative (the physical regime).
    const double min_cost = p.chargeEnergy / p.backupBandwidth;
    p.backupCost = min_cost + rng.nextDouble(0.0, 3.0 * p.execEnergy);
    p.archStateBackup = rng.nextDouble(0.0, 256.0);
    p.appStateRate = rng.nextDouble(0.0, 2.0);
    p.restoreBandwidth = rng.nextDouble(0.1, 16.0);
    if (allow_restore) {
        const double min_rcost = p.chargeEnergy / p.restoreBandwidth;
        p.restoreCost =
            min_rcost + rng.nextDouble(0.0, 2.0 * p.execEnergy);
        p.archStateRestore = rng.nextDouble(0.0, 256.0);
        p.appRestoreRate = rng.nextDouble(0.0, 1.0);
    } else {
        p.restoreCost = 0.0;
        p.archStateRestore = 0.0;
        p.appRestoreRate = 0.0;
    }
    return p;
}

class ModelProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ModelProperty, EnergyBalanceExact)
{
    Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 40; ++i) {
        const Params p = randomParams(rng, true, true);
        const auto b = Model(p).breakdown();
        EXPECT_NEAR(b.residual, 0.0, 1e-8 * p.energyBudget)
            << p.describe();
    }
}

TEST_P(ModelProperty, ProgressBoundsWithoutCharging)
{
    Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 40; ++i) {
        const Params p = randomParams(rng, false, true);
        for (auto mode : {DeadCycleMode::BestCase, DeadCycleMode::Average,
                          DeadCycleMode::WorstCase}) {
            const double prog = Model(p).progress(mode);
            EXPECT_GE(prog, 0.0) << p.describe();
            EXPECT_LE(prog, 1.0 + 1e-12) << p.describe();
        }
        EXPECT_GE(Model(p).singleBackupProgress(), 0.0);
        EXPECT_LE(Model(p).singleBackupProgress(), 1.0 + 1e-12);
    }
}

TEST_P(ModelProperty, DeadCycleOrdering)
{
    Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 40; ++i) {
        const Params p = randomParams(rng, true, true);
        Model m(p);
        const double best = m.progress(DeadCycleMode::BestCase);
        const double avg = m.progress(DeadCycleMode::Average);
        const double worst = m.progress(DeadCycleMode::WorstCase);
        EXPECT_GE(best + 1e-12, avg) << p.describe();
        EXPECT_GE(avg + 1e-12, worst) << p.describe();
    }
}

TEST_P(ModelProperty, CostMonotonicity)
{
    // Growing any cost parameter must never increase progress.
    Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 25; ++i) {
        const Params p = randomParams(rng, false, true);
        const double base = Model(p).progress();
        auto worse = [&](auto mutate) {
            Params q = p;
            mutate(q);
            EXPECT_LE(Model(q).progress(), base + 1e-12)
                << p.describe();
        };
        worse([&](Params &q) { q.backupCost *= 1.5; });
        worse([&](Params &q) { q.archStateBackup += 10.0; });
        worse([&](Params &q) { q.appStateRate += 0.2; });
        worse([&](Params &q) { q.restoreCost += 0.5; });
        worse([&](Params &q) { q.archStateRestore += 10.0; });
        worse([&](Params &q) { q.appRestoreRate += 0.1; });
    }
}

TEST_P(ModelProperty, OptimaMatchNumericSearch)
{
    Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 8; ++i) {
        Params p = randomParams(rng, false, false);
        if (p.archStateBackup < 1e-3)
            p.archStateBackup = 1e-3; // keep the optimum interior
        const double closed = core::optimalBackupPeriod(p);
        const double numeric = core::numericOptimalBackupPeriod(
            p, DeadCycleMode::Average, 1e-4, 1e9);
        EXPECT_NEAR(closed, numeric, 2e-4 * std::max(closed, 1.0))
            << p.describe();
        EXPECT_LT(core::worstCaseOptimalBackupPeriod(p), closed)
            << p.describe();
    }
}

TEST_P(ModelProperty, SingleBackupIsGeneralModelFixedPoint)
{
    Rng rng(6000 + static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 15; ++i) {
        const Params p = randomParams(rng, false, true);
        const double single = Model(p).singleBackupProgress();
        if (single <= 0.0)
            continue;
        double tau = p.backupPeriod;
        for (int it = 0; it < 300; ++it) {
            const double tau_p =
                Model(p).withBackupPeriod(tau).progressCycles(0.0);
            if (std::abs(tau_p - tau) < 1e-9 * std::max(1.0, tau))
                break;
            tau = std::max(tau_p, 1e-9);
        }
        const double general =
            Model(p).withBackupPeriod(tau).progressAt(0.0);
        EXPECT_NEAR(single, general, 1e-5 * std::max(single, 1e-6))
            << p.describe();
    }
}

TEST_P(ModelProperty, ProgressCyclesScaleWithBudget)
{
    // Doubling E more than doubles tau_P (one-time costs amortize).
    Rng rng(7000 + static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 25; ++i) {
        const Params p = randomParams(rng, false, true);
        const double tau1 =
            Model(p).breakdown(DeadCycleMode::Average).progressCycles;
        Params q = p;
        q.energyBudget *= 2.0;
        const double tau2 =
            Model(q).breakdown(DeadCycleMode::Average).progressCycles;
        if (tau1 > 0.0) {
            EXPECT_GE(tau2 + 1e-9, 2.0 * tau1) << p.describe();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty, ::testing::Range(0, 8));

} // namespace
