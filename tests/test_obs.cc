/**
 * @file
 * Tests for the observability subsystem (docs/OBSERVABILITY.md): the
 * trace sink's ring-buffer and scoped-span semantics, the metrics
 * registry's merge determinism, the Chrome-trace exporter's structural
 * validity, the simulator's per-phase energy conservation, and the
 * --jobs invariance of the deterministic metrics snapshot.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "energy/meter.hh"
#include "energy/supply.hh"
#include "explore/campaign.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/summary.hh"
#include "obs/trace.hh"
#include "runtime/dino.hh"
#include "runtime/hibernus.hh"
#include "runtime/hibernus_pp.hh"
#include "runtime/mementos.hh"
#include "runtime/watchdog.hh"
#include "sim/simulator.hh"
#include "util/panic.hh"
#include "workloads/workload.hh"

namespace {

using namespace eh;

/** Disables the global sink on scope exit even when an ASSERT fires. */
struct SinkGuard
{
    ~SinkGuard() { obs::trace().disable(); }
};

/** Export the sink's current contents and parse them back. */
obs::JsonValue
exportAndParse()
{
    std::ostringstream oss;
    obs::writeChromeTrace(obs::trace().snapshot(), oss);
    return obs::parseJson(oss.str());
}

TEST(TraceSink, DisabledPathRecordsNothing)
{
    obs::trace().disable();
    EXPECT_EQ(obs::trace().mask(), 0u);
    EXPECT_FALSE(obs::traceEnabled(obs::Category::Sim));
    // Virtual-track registration is a no-op while disabled (0 means
    // "don't trace"), so benchmark loops can't grow the registry.
    EXPECT_EQ(obs::trace().virtualTrack("sim:off"), 0u);
    obs::trace().instant(obs::Category::Sim, "ignored");
    obs::trace().span(obs::Category::Sim, "ignored", 0, 1);
}

TEST(TraceSink, CategoryMaskFilters)
{
    SinkGuard guard;
    obs::trace().enable(
        static_cast<std::uint32_t>(obs::Category::Campaign));
    EXPECT_TRUE(obs::traceEnabled(obs::Category::Campaign));
    EXPECT_FALSE(obs::traceEnabled(obs::Category::Sim));
    obs::trace().instant(obs::Category::Sim, "filtered");
    obs::trace().instant(obs::Category::Campaign, "kept");
    const auto snap = obs::trace().snapshot();
    ASSERT_EQ(snap.events.size(), 1u);
    EXPECT_STREQ(snap.events[0].name, "kept");
}

TEST(TraceSink, ParseCategoriesNamesAndAll)
{
    EXPECT_EQ(obs::parseCategories("all"), obs::allCategories);
    EXPECT_EQ(obs::parseCategories("sim"),
              static_cast<std::uint32_t>(obs::Category::Sim));
    EXPECT_EQ(obs::parseCategories("sim,campaign"),
              static_cast<std::uint32_t>(obs::Category::Sim) |
                  static_cast<std::uint32_t>(obs::Category::Campaign));
    EXPECT_THROW(obs::parseCategories("bogus"), FatalError);
}

TEST(TraceSink, RingWraparoundKeepsNewestAndCountsDropped)
{
    SinkGuard guard;
    constexpr std::size_t capacity = 8;
    constexpr int emitted = 100;
    obs::trace().enable(obs::allCategories, capacity);
    for (int i = 0; i < emitted; ++i) {
        obs::trace().instant(obs::Category::Sim, "tick",
                             {{"i", static_cast<double>(i)}});
    }
    const auto snap = obs::trace().snapshot();
    EXPECT_EQ(snap.dropped, emitted - capacity);
    double newest = -1.0;
    std::size_t ticks = 0;
    for (const auto &e : snap.events) {
        if (std::strcmp(e.name, "tick") != 0)
            continue;
        ++ticks;
        ASSERT_EQ(e.argCount, 1u);
        newest = std::max(newest, e.args[0].value);
    }
    EXPECT_EQ(ticks, capacity);
    EXPECT_EQ(newest, static_cast<double>(emitted - 1)); // newest kept
}

TEST(TraceSink, ScopedSpansNestAndExportValidates)
{
    SinkGuard guard;
    obs::trace().enable();
    {
        obs::TraceScope outer(obs::Category::Campaign, "outer",
                              {{"depth", 0.0}});
        outer.arg("extra", 42.0);
        {
            obs::TraceScope inner(obs::Category::Campaign, "inner");
        }
    }
    const auto snap = obs::trace().snapshot();
    ASSERT_EQ(snap.events.size(), 2u);
    // RAII order: inner's destructor records first; outer encloses it.
    const auto &inner = snap.events[0];
    const auto &outer = snap.events[1];
    EXPECT_STREQ(inner.name, "inner");
    EXPECT_STREQ(outer.name, "outer");
    EXPECT_LE(outer.start, inner.start);
    EXPECT_GE(outer.start + outer.dur, inner.start + inner.dur);
    EXPECT_EQ(outer.argCount, 2u);

    const auto check = obs::validateTrace(exportAndParse());
    EXPECT_TRUE(check.ok) << check.error;
    EXPECT_EQ(check.spans, 2u);
}

TEST(TraceSink, VirtualTracksSharedByName)
{
    SinkGuard guard;
    obs::trace().enable();
    const auto a1 = obs::trace().virtualTrack("sim:a");
    const auto a2 = obs::trace().virtualTrack("sim:a");
    const auto b = obs::trace().virtualTrack("sim:b");
    EXPECT_NE(a1, 0u);
    EXPECT_EQ(a1, a2);
    EXPECT_NE(a1, b);
    obs::trace().spanTicks(a1, obs::Category::Sim, "progress", 0, 100);
    obs::trace().instantTicks(b, obs::Category::Sim, "power-failure", 50);
    const auto snap = obs::trace().snapshot();
    bool sawA = false;
    bool sawB = false;
    for (const auto &t : snap.tracks) {
        if (t.name == "sim:a")
            sawA = t.virtualClock;
        if (t.name == "sim:b")
            sawB = t.virtualClock;
    }
    EXPECT_TRUE(sawA);
    EXPECT_TRUE(sawB);
    const auto check = obs::validateTrace(exportAndParse());
    EXPECT_TRUE(check.ok) << check.error;
    EXPECT_EQ(check.spans, 1u);
    EXPECT_EQ(check.instants, 1u);
}

TEST(TraceSink, InternedNamesOutliveTheirSource)
{
    SinkGuard guard;
    obs::trace().enable();
    const char *name = nullptr;
    {
        const std::string transient = "job:validation";
        name = obs::trace().intern(transient);
    }
    EXPECT_STREQ(name, "job:validation");
}

// --- Metrics registry ---------------------------------------------------

/** Two distinct metric populations for the merge tests. */
void
fillA(obs::MetricsRegistry &reg)
{
    reg.counter("jobs").add(7);
    reg.counter("hits").add(3);
    reg.gauge("busy").add(1.5);
    auto &h = reg.histogram("bytes");
    for (std::uint64_t v : {1u, 4u, 4u, 100u, 5000u})
        h.add(v);
}

void
fillB(obs::MetricsRegistry &reg)
{
    reg.counter("jobs").add(2);
    reg.counter("retries").add(1);
    reg.gauge("busy").add(0.5);
    auto &h = reg.histogram("bytes");
    for (std::uint64_t v : {2u, 8u, 1u << 20})
        h.add(v);
}

TEST(Metrics, MergeIsCommutative)
{
    obs::MetricsRegistry ab1, ab2, ba1, ba2;
    fillA(ab1);
    fillB(ab2);
    fillB(ba1);
    fillA(ba2);
    ab1.merge(ab2); // A <- B
    ba1.merge(ba2); // B <- A
    EXPECT_EQ(ab1.toJson(), ba1.toJson());
    EXPECT_EQ(ab1.counter("jobs").count(), 9u);
    EXPECT_EQ(ab1.histogram("bytes").snapshot().total(), 8u);
}

TEST(Metrics, DeterministicSnapshotOmitsGauges)
{
    obs::MetricsRegistry reg;
    reg.counter("jobs").add(1);
    reg.gauge("elapsed").set(12.34);
    const auto full = reg.toJson(false);
    const auto det = reg.toJson(true);
    EXPECT_NE(full.find("\"gauges\""), std::string::npos);
    EXPECT_NE(full.find("elapsed"), std::string::npos);
    EXPECT_EQ(det.find("\"gauges\""), std::string::npos);
    EXPECT_EQ(det.find("elapsed"), std::string::npos);
    EXPECT_NE(det.find("\"jobs\""), std::string::npos);
}

TEST(Metrics, CsvListsEveryMetric)
{
    obs::MetricsRegistry reg;
    reg.counter("campaign.jobs").add(4);
    reg.gauge("pool.steals").set(2.0);
    reg.histogram("campaign.result_bytes").add(128);
    std::ostringstream oss;
    reg.writeCsv(oss);
    const auto csv = oss.str();
    EXPECT_NE(csv.find("campaign.jobs"), std::string::npos);
    EXPECT_NE(csv.find("pool.steals"), std::string::npos);
    EXPECT_NE(csv.find("campaign.result_bytes"), std::string::npos);
}

/** Run one deterministic in-process campaign and snapshot the registry. */
std::string
campaignMetricsSnapshot(unsigned jobs)
{
    obs::metrics().clear();
    explore::CampaignConfig cc;
    cc.name = "obs-test";
    cc.jobs = jobs;
    cc.seed = 11;
    cc.cache = false;
    cc.progress = false;
    explore::Campaign campaign(cc);
    for (int i = 0; i < 24; ++i) {
        campaign.add(explore::JobSpec("demo")
                         .set("x", 0.25 * i)
                         .set("cell", i));
    }
    campaign.run([](const explore::JobSpec &spec, Rng &rng) {
        return explore::JobResult()
            .set("y", spec.getDouble("x", 0.0) + 1.0)
            .set("draw", rng.next());
    });
    const auto json = obs::metrics().toJson(true);
    obs::metrics().clear();
    return json;
}

TEST(Metrics, CampaignSnapshotIdenticalAcrossJobCounts)
{
    // The determinism contract behind --metrics-out: counters and
    // histograms record only scheduling-independent quantities, so the
    // deterministic snapshot is byte-identical at any worker count.
    const auto serial = campaignMetricsSnapshot(1);
    const auto parallel = campaignMetricsSnapshot(8);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("\"campaign.jobs\": 24"), std::string::npos)
        << serial;
}

// --- Simulator phase timeline -------------------------------------------

TEST(SimulatorTrace, ExportsValidPhaseTimeline)
{
    SinkGuard guard;
    obs::trace().enable();
    const auto w =
        workloads::makeWorkload("crc", workloads::volatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    runtime::Watchdog policy(
        {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(4.0e6);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    ASSERT_GT(stats.backups, 0u);

    std::ostringstream oss;
    obs::writeChromeTrace(obs::trace().snapshot(), oss);
    const auto text = oss.str();
    EXPECT_NE(text.find("sim:crc/watchdog"), std::string::npos);
    EXPECT_NE(text.find("\"progress\""), std::string::npos);
    EXPECT_NE(text.find("\"backup\""), std::string::npos);
    EXPECT_NE(text.find("\"period\""), std::string::npos);

    const auto check = obs::validateTrace(obs::parseJson(text));
    EXPECT_TRUE(check.ok) << check.error;
    EXPECT_GT(check.spans, stats.backups); // >= one span per backup
}

TEST(SimulatorTrace, RepeatedRunsOnSharedTrackStayWellFormed)
{
    // Benchmarks re-run the same workload/policy cell in a loop, so
    // many runs share one virtual track; the exporter must still emit
    // properly nested B/E pairs.
    SinkGuard guard;
    obs::trace().enable(obs::allCategories, 1u << 12);
    const auto w =
        workloads::makeWorkload("sense", workloads::volatileLayout());
    for (int i = 0; i < 3; ++i) {
        sim::SimConfig cfg;
        cfg.sramUsedBytes = w.sramUsedBytes;
        runtime::Watchdog policy(
            {.periodCycles = 3000, .sramUsedBytes = cfg.sramUsedBytes});
        energy::ConstantSupply supply(3.0e6);
        sim::Simulator s(w.program, policy, supply, cfg);
        s.run();
    }
    const auto check = obs::validateTrace(exportAndParse());
    EXPECT_TRUE(check.ok) << check.error;
    EXPECT_GT(check.spans, 0u);
}

// --- EnergyMeter conservation -------------------------------------------

std::unique_ptr<runtime::BackupPolicy>
conservationPolicy(const std::string &name, std::size_t sram_used)
{
    if (name == "hibernus") {
        runtime::HibernusConfig c;
        c.sramUsedBytes = sram_used;
        c.backupThreshold = 0.5;
        return std::make_unique<runtime::Hibernus>(c);
    }
    if (name == "hibernus++") {
        runtime::HibernusPPConfig c;
        c.sramUsedBytes = sram_used;
        return std::make_unique<runtime::HibernusPP>(c);
    }
    if (name == "mementos") {
        runtime::MementosConfig c;
        c.sramUsedBytes = sram_used;
        c.backupThreshold = 0.5;
        return std::make_unique<runtime::Mementos>(c);
    }
    runtime::DinoConfig c;
    c.sramUsedBytes = sram_used;
    return std::make_unique<runtime::Dino>(c);
}

TEST(EnergyMeter, PerPhaseAccountingIsConservative)
{
    // Every consumed joule the simulator reports per period must land
    // in exactly one meter phase (or remain uncommitted at the end):
    // sum-of-phases == total consumed, for the whole validation matrix.
    const std::vector<std::string> policies = {"hibernus", "hibernus++",
                                               "mementos", "dino"};
    for (const auto &workload : workloads::tableIINames()) {
        const auto w = workloads::makeWorkload(
            workload, workloads::volatileLayout());
        for (const auto &policy : policies) {
            sim::SimConfig cfg;
            cfg.sramUsedBytes = w.sramUsedBytes;
            cfg.maxActivePeriods = 500;
            const double budget =
                12.0 * (static_cast<double>(cfg.sramUsedBytes) + 68.0) *
                75.0;
            auto pol = conservationPolicy(policy, cfg.sramUsedBytes);
            energy::ConstantSupply supply(budget);
            sim::Simulator s(w.program, *pol, supply, cfg);
            const auto stats = s.run();

            const double consumed = stats.periodEnergy.sum();
            const double metered = stats.meter.totalEnergy() +
                                   stats.meter.uncommittedEnergy();
            ASSERT_GT(consumed, 0.0)
                << workload << "/" << policy;
            EXPECT_NEAR(metered, consumed, 1e-6 * consumed)
                << workload << "/" << policy << ": "
                << stats.meter.report();
            EXPECT_GT(stats.meter.totalCycles() +
                          stats.meter.uncommittedCycles(),
                      0u);
        }
    }
}

} // namespace
