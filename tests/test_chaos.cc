/**
 * @file
 * Deterministic chaos engine suite (src/util/chaos.hh,
 * docs/ROBUSTNESS.md): EH_CHAOS parsing is total-or-fatal (a typo never
 * silently disables an injection), draws are a pure function of
 * (seed, site, hit index), crash= directives kill the process with the
 * dedicated exit code and kill -9 fidelity (checked in a forked
 * child), the EH_CHAOS_FUSE one-shot disarms crash/enospc for the
 * respawned process, and an armed store.append site surfaces as a
 * clean StoreError naming the segment.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "explore/job.hh"
#include "explore/store.hh"
#include "obs/metrics.hh"
#include "svc/chaos.hh"
#include "util/chaos.hh"
#include "util/panic.hh"

namespace {

using namespace eh;
namespace fs = std::filesystem;

/** Scoped EH_CHAOS/EH_CHAOS_FUSE: set on entry, clean on exit. */
class ChaosEnv
{
  public:
    explicit ChaosEnv(const std::string &spec,
                      const std::string &fuse = "")
    {
        ::setenv("EH_CHAOS", spec.c_str(), 1);
        if (fuse.empty())
            ::unsetenv("EH_CHAOS_FUSE");
        else
            ::setenv("EH_CHAOS_FUSE", fuse.c_str(), 1);
        chaos::resetForTest();
    }

    ~ChaosEnv()
    {
        ::unsetenv("EH_CHAOS");
        ::unsetenv("EH_CHAOS_FUSE");
        chaos::resetForTest();
    }
};

class ChaosScratch
{
  public:
    explicit ChaosScratch(const std::string &tag)
    {
        root = fs::temp_directory_path() / ("eh_chaos_test_" + tag);
        fs::remove_all(root);
        fs::create_directories(root);
    }
    ~ChaosScratch() { fs::remove_all(root); }
    std::string str() const { return root.string(); }
    std::string file(const char *name) const
    {
        return (root / name).string();
    }

  private:
    fs::path root;
};

TEST(Chaos, DisabledByDefaultAndInert)
{
    ::unsetenv("EH_CHAOS");
    ::unsetenv("EH_CHAOS_FUSE");
    chaos::resetForTest();
    EXPECT_FALSE(chaos::enabled());
    EXPECT_EQ(chaos::seed(), 0u);
    chaos::point("anything.at.all");
    int err = 0;
    EXPECT_FALSE(chaos::failPoint("store.append", err));
    EXPECT_EQ(chaos::clampIo("net.send", 4096u), 4096u);
    EXPECT_FALSE(chaos::spuriousEintr("net.recv"));
    EXPECT_EQ(chaos::describe(), "chaos: disabled");
}

TEST(Chaos, SpecParsesAndDescribes)
{
    ChaosEnv env("42:crash=broker.result.recv@3,enospc=store.append@1,"
                 "delay=net.send@5,shortio=250,eintr=125");
    EXPECT_TRUE(chaos::enabled());
    EXPECT_EQ(chaos::seed(), 42u);
    EXPECT_NE(chaos::describe().find("crash=broker.result.recv@3"),
              std::string::npos);
}

TEST(Chaos, MalformedSpecIsFatalNeverSilent)
{
    const std::vector<std::string> bad = {
        "noseed",                 // no <seed>:
        "1:crash",                // directive lacks '='
        "1:crash=",               // no site
        "1:frobnicate=x",         // unknown directive
        "1:crash=a.site@0",       // hit count 0
        "1:delay=a.site",         // delay without @ms
        "abc:crash=a.site",       // non-numeric seed
        "1:shortio=abc",          // non-numeric permille
    };
    for (const std::string &spec : bad) {
        ::setenv("EH_CHAOS", spec.c_str(), 1);
        ::unsetenv("EH_CHAOS_FUSE");
        EXPECT_THROW(chaos::resetForTest(), FatalError)
            << "spec '" << spec << "' was accepted";
    }
    ::unsetenv("EH_CHAOS");
    chaos::resetForTest();
}

TEST(Chaos, DrawsAreDeterministicAcrossReloads)
{
    std::vector<std::size_t> first, second;
    std::vector<bool> firstEintr, secondEintr;
    {
        ChaosEnv env("1234:shortio=500,eintr=500");
        for (int i = 0; i < 32; ++i) {
            first.push_back(chaos::clampIo("net.send", 1000u));
            firstEintr.push_back(chaos::spuriousEintr("net.recv"));
        }
    }
    {
        ChaosEnv env("1234:shortio=500,eintr=500");
        for (int i = 0; i < 32; ++i) {
            second.push_back(chaos::clampIo("net.send", 1000u));
            secondEintr.push_back(chaos::spuriousEintr("net.recv"));
        }
    }
    EXPECT_EQ(first, second);
    EXPECT_EQ(firstEintr, secondEintr);
    // ~500 permille over 32 draws: both outcomes must occur, and every
    // clamp stays in [1, want].
    bool clamped = false, passed = false;
    for (const std::size_t n : first) {
        ASSERT_GE(n, 1u);
        ASSERT_LE(n, 1000u);
        (n < 1000u ? clamped : passed) = true;
    }
    EXPECT_TRUE(clamped);
    EXPECT_TRUE(passed);
    EXPECT_EQ(chaos::clampIo("net.send", 1u), 1u); // never clamps to 0
}

TEST(Chaos, FailPointFiresAtExactHit)
{
    ChaosEnv env("7:enospc=store.append@3");
    int err = 0;
    EXPECT_FALSE(chaos::failPoint("store.append", err));
    EXPECT_FALSE(chaos::failPoint("store.append", err));
    ASSERT_TRUE(chaos::failPoint("store.append", err));
    EXPECT_EQ(err, ENOSPC);
    EXPECT_FALSE(chaos::failPoint("store.append", err)); // hit 4
    EXPECT_FALSE(chaos::failPoint("store.other", err));  // other site
}

TEST(Chaos, CrashDirectiveExitsWithChaosCodeInForkedChild)
{
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::setenv("EH_CHAOS", "9:crash=test.crash.site@2", 1);
        ::unsetenv("EH_CHAOS_FUSE");
        chaos::resetForTest();
        chaos::point("test.crash.site");     // hit 1: survives
        chaos::point("test.other.site");     // different site counter
        chaos::point("test.crash.site");     // hit 2: _exit(86)
        ::_exit(0);                          // must be unreachable
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), chaos::chaosExitCode);
}

TEST(Chaos, FuseDisarmsCrashForTheNextProcess)
{
    ChaosScratch dir("fuse");
    const std::string fuse = dir.file("fuse");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::setenv("EH_CHAOS", "5:crash=test.fuse.site@1", 1);
        ::setenv("EH_CHAOS_FUSE", fuse.c_str(), 1);
        chaos::resetForTest();
        chaos::point("test.fuse.site"); // burns the fuse, _exit(86)
        ::_exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), chaos::chaosExitCode);
    ASSERT_TRUE(fs::exists(fuse)) << "crash did not burn the fuse";

    // The "respawned" process: same env, fuse present → crash and
    // enospc are disarmed; the site is hit without dying.
    ChaosEnv env("5:crash=test.fuse.site@1", fuse);
    chaos::point("test.fuse.site");
    chaos::point("test.fuse.site");
    int err = 0;
    EXPECT_FALSE(chaos::failPoint("test.fuse.site", err));
    EXPECT_NE(chaos::describe().find("disarmed"), std::string::npos);
}

TEST(Chaos, ForkedChildRereadsTheFuseInsteadOfInheritingArmedState)
{
    // Regression: a supervisor parses EH_CHAOS at startup (fuse absent
    // → armed) and later forks a broker child. If the child inherited
    // the parent's parsed snapshot it would stay armed after the fuse
    // burnt and crash on every respawn until the respawn budget was
    // gone. The pthread_atfork handler must make the child re-read the
    // environment — and the now-present fuse — at its first site hit.
    ChaosScratch dir("atfork");
    const std::string fuse = dir.file("fuse");
    ChaosEnv env("13:crash=test.atfork.site@1", fuse);
    ASSERT_TRUE(chaos::enabled()); // parent parses while fuse absent

    { std::ofstream burn(fuse); } // another process "already died"
    ASSERT_TRUE(fs::exists(fuse));

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        chaos::point("test.atfork.site"); // must be disarmed: survives
        ::_exit(chaos::describe().find("disarmed") != std::string::npos
                    ? 0
                    : 7);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0)
        << "forked child kept the parent's armed chaos snapshot";

    // The parent's own snapshot is untouched: still armed, and the
    // next hit of the site in *this* process does fire. Probe that
    // via a second fork so the test binary itself survives.
    const pid_t armed = ::fork();
    ASSERT_GE(armed, 0);
    if (armed == 0) {
        ::unlink(fuse.c_str()); // fuse gone again → child re-arms
        chaos::point("test.atfork.site");
        ::_exit(0); // unreachable when armed
    }
    ASSERT_EQ(::waitpid(armed, &status, 0), armed);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), chaos::chaosExitCode);
}

TEST(Chaos, StoreAppendEnospcSurfacesAsStoreError)
{
    ChaosScratch dir("enospc");
    ChaosEnv env("3:enospc=store.append@2");
    const std::uint64_t before =
        obs::metrics().counter("store.append_errors").count();

    explore::SegmentStore store(dir.file("grid.ehc"));
    explore::JobSpec spec("chaosgrid");
    spec.set("cell", static_cast<std::uint64_t>(1));
    explore::JobResult result;
    result.set("y", 1.0);
    explore::StoreRecord record{spec.canonical(), spec.hash(), 11,
                                result};
    store.append(record); // hit 1: clean
    spec.set("cell", static_cast<std::uint64_t>(2));
    record.canonical = spec.canonical();
    record.hash = spec.hash();
    try {
        store.append(record); // hit 2: injected ENOSPC
        FAIL() << "append did not throw";
    } catch (const explore::StoreError &e) {
        // The error must name the failing segment and the bytes it
        // wanted — that is the whole point of the dedicated type.
        EXPECT_NE(std::string(e.what()).find("seg-"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("bytes"),
                  std::string::npos);
    }
    EXPECT_EQ(
        obs::metrics().counter("store.append_errors").count(),
        before + 1);

    // The store survives the failed append: hit 3 is clean and the
    // record becomes durable + servable.
    store.append(record);
    explore::JobResult back;
    EXPECT_TRUE(
        store.lookup(record.canonical, record.hash, 11, back));
}

TEST(Chaos, SiteRegistryCoversTheInstrumentedSites)
{
    std::size_t count = 0;
    const char *const *sites = svc::chaosSites(count);
    ASSERT_GE(count, 10u);
    std::vector<std::string> all(sites, sites + count);
    for (const char *site :
         {"store.append", "net.send", "net.recv",
          "proto.frame.decoded", "broker.result.persisted",
          "client.resume", "worker.result.send"}) {
        EXPECT_NE(std::find(all.begin(), all.end(), site), all.end())
            << "site registry lost '" << site << "'";
    }
}

} // namespace
