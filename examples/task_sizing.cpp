/**
 * @file
 * Task sizing for a Chain/DINO-style programmer (Section IV-A1): given
 * the MSP430-class platform, how long should atomic tasks be? Each task
 * boundary is a backup, so the task length *is* tau_B. The example
 * sweeps candidate task lengths, shows the progress each achieves, and
 * derives the model's recommendation from Equation 9.
 *
 * Build & run:  ./build/examples/task_sizing
 */

#include <iostream>

#include "core/model.hh"
#include "core/optimum.hh"
#include "core/params.hh"
#include "core/sweep.hh"
#include "util/table.hh"

int
main()
{
    using namespace eh;

    // MSP430FR5994-class platform, 0.25 s active periods; the
    // application dirties ~0.1 bytes/cycle (Section V-A).
    core::Params params = core::msp430Params(0.25);

    std::cout << "Platform: " << params.describe() << "\n\n"
              << "Candidate task lengths (cycles between task-boundary "
                 "commits):\n";

    Table table({"task length (cycles)", "task length (us @16MHz)",
                 "progress p", "note"});
    const double tau_opt = core::optimalBackupPeriod(params);
    for (double tau :
         {500.0, 2000.0, 8000.0, tau_opt, 60000.0, 250000.0}) {
        const double p =
            core::Model(params).withBackupPeriod(tau).progress();
        table.row({Table::num(tau, 0),
                   Table::num(tau / 16.0, 1), Table::pct(p),
                   tau == tau_opt ? "<- Equation 9 optimum" : ""});
    }
    table.print(std::cout);

    std::cout << "\nRecommendation: size tasks near "
              << Table::num(tau_opt, 0) << " cycles ("
              << Table::num(tau_opt / 16.0e6 * 1e3, 2)
              << " ms at 16 MHz).\n"
              << "If tail latency matters, use the worst-case optimum "
              << Table::num(core::worstCaseOptimalBackupPeriod(params),
                            0)
              << " cycles instead\n(Section IV-A2).\n";

    // How sharp is the optimum? Show the 95% iso-progress band.
    const double p_best =
        core::Model(params).withBackupPeriod(tau_opt).progress();
    const auto taus = core::logspace(100.0, 1.0e6, 400);
    double lo = tau_opt, hi = tau_opt;
    for (double tau : taus) {
        const double p =
            core::Model(params).withBackupPeriod(tau).progress();
        if (p >= 0.95 * p_best) {
            lo = std::min(lo, tau);
            hi = std::max(hi, tau);
        }
    }
    std::cout << "Any task length in [" << Table::num(lo, 0) << ", "
              << Table::num(hi, 0) << "] cycles stays within 5% of the "
              << "optimum —\nprogrammers have slack (the optimum is "
                 "broad).\n";
    return 0;
}
