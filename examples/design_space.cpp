/**
 * @file
 * Architect's view: a two-dimensional design-space exploration over the
 * backup mechanism (cost per byte) and the backup period, rendered as an
 * ASCII heatmap, plus the Section IV-A3 guidance on whether to spend
 * engineering effort on the backup path or the restore path.
 *
 * Build & run:  ./build/examples/design_space
 */

#include <iostream>

#include "core/model.hh"
#include "core/optimum.hh"
#include "core/params.hh"
#include "core/sweep.hh"
#include "util/table.hh"

int
main()
{
    using namespace eh;

    core::Params base = core::illustrativeParams();
    base.restoreCost = 0.5;
    base.archStateRestore = 2.0;

    const auto taus = core::logspace(1.0, 500.0, 32);
    const auto omegas = core::linspace(0.0, 4.0, 17);

    const auto grid = core::sweep2D(
        omegas, taus, [&](double omega, double tau) {
            core::Params p = base;
            p.backupCost = omega;
            p.backupPeriod = tau;
            return core::Model(p).progress();
        });

    std::cout << "Forward progress heatmap (rows: backup cost Omega_B, "
                 "cols: tau_B from "
              << Table::num(taus.front(), 0) << " to "
              << Table::num(taus.back(), 0) << " cycles, log scale)\n"
              << "shade: ' .:-=+*#%@' for p in [0, 1]\n\n";

    const char shades[] = " .:-=+*#%@";
    for (std::size_t oi = 0; oi < omegas.size(); ++oi) {
        std::cout << "Omega_B=" << Table::num(omegas[oi], 2) << " |";
        for (std::size_t ti = 0; ti < taus.size(); ++ti) {
            const double p = grid.at(oi, ti).value;
            const int shade = std::min(
                9, static_cast<int>(p * 10.0));
            std::cout << shades[shade < 0 ? 0 : shade];
        }
        std::cout << "|\n";
    }

    std::cout << "\nBest configuration: Omega_B = "
              << Table::num(grid.bestX, 2) << ", tau_B = "
              << Table::num(grid.bestY, 1) << " -> p = "
              << Table::pct(grid.bestValue) << "\n";

    // Where should the optimization effort go at a given tau_B?
    const double tau_be = core::breakEvenBackupPeriodFixedPoint(base);
    std::cout << "\nBackup-vs-restore break-even (Equation 11): tau_B = "
              << Table::num(tau_be, 1) << " cycles\n";
    for (double tau : {tau_be / 4.0, tau_be, tau_be * 4.0}) {
        core::Params p = base;
        p.backupPeriod = tau;
        const double db = core::progressPerBackupEnergy(p);
        const double dr = core::progressPerRestoreEnergy(p);
        std::cout << "  tau_B = " << Table::num(tau, 1)
                  << ": dp/de_B = " << Table::num(db, 5)
                  << ", dp/de_R = " << Table::num(dr, 5) << " -> invest "
                  << (db < dr ? "in the BACKUP path"
                              : "in the RESTORE path")
                  << "\n";
    }
    return 0;
}
