/**
 * @file
 * Programmer's advisor for the Section VI-A case study: given a loop
 * nest's read/write footprints and the platform's nonvolatile memory
 * technology, should it be written load-major or store-major? On
 * intermittent architectures dirty cache blocks are flushed at every
 * backup, so store locality can dominate — the opposite of conventional
 * wisdom.
 *
 * Build & run:  ./build/examples/locality_advisor
 */

#include <iostream>

#include "core/locality.hh"
#include "mem/nvm.hh"
#include "util/table.hh"

int
main()
{
    using namespace eh;

    std::cout << "Scenario: the matrix transpose of the paper's Listing "
                 "1 — equal read and write\nfootprints, 16-byte cache "
                 "blocks, word accesses.\n\n";

    Table table({"NVM technology", "write/read cost", "overhead ratio",
                 "recommendation"});
    for (auto tech : {mem::NvmTech::Fram, mem::NvmTech::ReRam,
                      mem::NvmTech::SttRam, mem::NvmTech::Flash}) {
        const auto costs = mem::defaultCosts(tech);
        core::LocalityParams lp;
        lp.blockBytes = 16.0;
        lp.loadBytes = 4.0;
        lp.storeBytes = 4.0;
        lp.loadRate = 0.1;      // alpha_load
        lp.appStateRate = 0.1;  // alpha_B: equal footprints
        lp.loadBandwidth = costs.readBandwidth;
        lp.backupBandwidth = costs.writeBandwidth;
        lp.progressCycles = 10000.0;
        lp.backupPeriod = 1000.0;
        lp.backupCount = 10.0;

        const double ratio = core::loadMajorOverStoreMajorRatio(lp);
        const bool store_major = core::storeMajorWins(lp);
        table.row({nvmTechName(tech),
                   Table::num(costs.writeEnergyPerByte /
                                  costs.readEnergyPerByte,
                              1) + "x",
                   Table::num(ratio, 2),
                   store_major ? "STORE-major loop order"
                               : "load-major (conventional)"});
    }
    table.print(std::cout);

    std::cout << "\nReading the table: ratio > 1 means the conventional "
                 "load-major order costs more\ncycles than store-major. "
                 "With symmetric FRAM the transpose is a wash (ratio "
                 "1.0);\nwith STT-RAM's ~10x writes, store-major wins "
                 "decisively (Section VI-A).\n\nWrite-heavy loops "
                 "(write footprint > read footprint) prefer store-major "
                 "on every\ntechnology:\n";

    Table heavy({"alpha_B / alpha_load", "FRAM verdict",
                 "STT-RAM verdict"});
    for (double write_read : {0.5, 1.0, 2.0, 4.0}) {
        std::string verdicts[2];
        int i = 0;
        for (auto tech : {mem::NvmTech::Fram, mem::NvmTech::SttRam}) {
            const auto costs = mem::defaultCosts(tech);
            core::LocalityParams lp;
            lp.loadRate = 0.1;
            lp.appStateRate = 0.1 * write_read;
            lp.loadBandwidth = costs.readBandwidth;
            lp.backupBandwidth = costs.writeBandwidth;
            verdicts[i++] = core::storeMajorWins(lp) ? "store-major"
                                                     : "load-major";
        }
        heavy.row({Table::num(write_read, 1), verdicts[0], verdicts[1]});
    }
    heavy.print(std::cout);
    return 0;
}
