/**
 * @file
 * End-to-end demo of the full simulation stack: run the CRC benchmark
 * under the Clank policy on an energy-harvesting supply driven by a
 * synthetic RF voltage trace, verify the result survived the power
 * failures bit-for-bit, and compare the measured forward progress with
 * the EH model's calibrated prediction.
 *
 * Build & run:  ./build/examples/intermittent_sim_demo
 */

#include <iostream>

#include "arch/cpu.hh"
#include "core/calibration.hh"
#include "energy/supply.hh"
#include "energy/trace.hh"
#include "energy/transducer.hh"
#include "runtime/clank.hh"
#include "sim/simulator.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace eh;

    // 1. Pick a workload; place its data in nonvolatile memory (the
    //    Clank platform style).
    const auto w =
        workloads::makeWorkload("crc", workloads::nonvolatileLayout());

    // 2. Build the platform: Cortex-M0+-class costs, an RF spiky trace
    //    charging a small capacitor through a transducer.
    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.costs = arch::CostModel::cortexM0();
    cfg.maxActivePeriods = 30000;

    auto traces = energy::makePaperTraces(7, 30'000'000);
    energy::Transducer transducer(0.6, 3000.0, 16.0e6);
    energy::Capacitor capacitor(0.68e-6, 3.6, 3.0, 2.2);
    energy::HarvestingSupply supply(std::move(traces[0]), transducer,
                                    capacitor);

    runtime::Clank policy({});

    // 3. Run to completion across however many power cycles it takes.
    sim::Simulator simulator(w.program, policy, supply, cfg);
    const auto stats = simulator.run();

    std::cout << "Run: " << stats.summary() << "\n";

    // 4. Verify correctness: the result in NVM must match the reference.
    bool correct = stats.finished;
    for (std::size_t i = 0; i < w.resultAddrs.size(); ++i)
        correct &= simulator.resultWord(w.resultAddrs[i]) == w.expected[i];
    std::cout << "Result check vs C++ reference: "
              << (correct ? "EXACT MATCH" : "MISMATCH!") << "\n";

    // 5. Calibrate the EH model from this run and compare. Note:
    //    observe() reports E as the total energy consumed per period —
    //    in-period harvesting is already folded in — so epsilon_C stays
    //    zero here; setting it too would double-count the charging.
    const auto obs = stats.observe(cfg, 80);
    const auto pred = core::predictFromObservation(obs);
    std::cout << "\nEH model vs measurement:\n"
              << "  measured forward progress:  "
              << Table::pct(pred.measuredProgress) << "\n"
              << "  model-predicted progress:   "
              << Table::pct(pred.predictedProgress) << "\n"
              << "  relative error:             "
              << Table::pct(pred.relativeError) << "\n"
              << "\nCalibrated parameters: " << pred.params.describe()
              << "\n";
    return correct ? 0 : 1;
}
