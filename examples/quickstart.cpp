/**
 * @file
 * Quickstart: describe an intermittent architecture with Table I
 * parameters, estimate its forward progress, inspect the energy
 * breakdown, and find the optimal backup period.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/model.hh"
#include "core/optimum.hh"
#include "core/params.hh"
#include "util/table.hh"

int
main()
{
    using namespace eh;

    // 1. Describe the architecture (units are abstract; only ratios
    //    matter — see core::msp430Params() for a device-calibrated set).
    core::Params params;
    params.energyBudget = 100.0;   // E: energy per active period
    params.execEnergy = 1.0;       // eps: energy per executed cycle
    params.backupPeriod = 10.0;    // tau_B: cycles between backups
    params.backupCost = 1.0;       // Omega_B: joules per byte backed up
    params.archStateBackup = 1.0;  // A_B: bytes per backup (PC, regs)
    params.appStateRate = 0.1;     // alpha_B: dirty bytes per cycle

    // 2. Ask the model how much of the energy becomes useful work.
    core::Model model(params);
    std::cout << "Forward progress p = "
              << Table::pct(model.progress()) << " of the energy "
              << "budget\n\nWhere the energy goes per active period:\n";

    const auto b = model.breakdown();
    Table table({"component", "energy", "share"});
    table.row({"forward progress (e_P)", Table::num(b.progressEnergy, 2),
               Table::pct(b.progressEnergy / params.energyBudget)});
    table.row({"backups (n_B * e_B)", Table::num(b.backupEnergy, 2),
               Table::pct(b.backupEnergy / params.energyBudget)});
    table.row({"dead execution (e_D)", Table::num(b.deadEnergy, 2),
               Table::pct(b.deadEnergy / params.energyBudget)});
    table.row({"restore (e_R)", Table::num(b.restoreEnergy, 2),
               Table::pct(b.restoreEnergy / params.energyBudget)});
    table.print(std::cout);

    // 3. How often should this system back up?
    const double tau_opt = core::optimalBackupPeriod(params);
    const double p_opt =
        model.withBackupPeriod(tau_opt).progress();
    std::cout << "\nOptimal backup period (Equation 9): "
              << Table::num(tau_opt, 1) << " cycles -> p = "
              << Table::pct(p_opt) << "\n";

    // 4. Designing for tail latency? Use the worst-case optimum.
    std::cout << "Worst-case optimum (Equation 10):   "
              << Table::num(core::worstCaseOptimalBackupPeriod(params),
                            1)
              << " cycles (always back up more often for tail "
                 "latency)\n";
    return 0;
}
