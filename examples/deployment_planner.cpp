/**
 * @file
 * Deployment planner: wall-clock answers for a batteryless sensor node.
 * Given the harvest power of the installation site and the work a duty
 * cycle needs, estimate end-to-end completion time, active duty cycle,
 * how monitoring aggressiveness eats the budget on a single-backup
 * design, and how much a Spendthrift-style speculative scheduler could
 * recover.
 *
 * Build & run:  ./build/examples/deployment_planner
 */

#include <iostream>

#include "core/model.hh"
#include "core/monitoring.hh"
#include "core/optimum.hh"
#include "core/throughput.hh"
#include "util/table.hh"

int
main()
{
    using namespace eh;

    // MSP430-class node, 0.25 s active periods, multi-backup runtime.
    core::Params params = core::msp430Params(0.25);
    params.backupPeriod = core::optimalBackupPeriod(params);

    // A duty cycle's work: ~2M useful cycles (a beefy sensing+crypto
    // pass at 16 MHz).
    const double work_cycles = 2.0e6;

    std::cout << "Workload: " << work_cycles
              << " useful cycles on an MSP430-class node, tasks sized "
                 "at the Equation 9 optimum ("
              << Table::num(params.backupPeriod, 0) << " cycles).\n\n"
              << "Completion time vs harvest rate (energy per cycle "
                 "while recharging):\n";

    Table table({"harvest (pJ/cycle)", "periods", "duty cycle",
                 "completion (s @16MHz)", "throughput"});
    for (double harvest : {0.5, 2.0, 8.0, 32.0}) {
        const auto est =
            core::estimateCompletion(params, work_cycles, harvest);
        table.row({Table::num(harvest, 1), Table::num(est.periods, 1),
                   Table::pct(est.activeDutyCycle),
                   Table::num(est.totalCycles / 16.0e6, 2),
                   Table::pct(est.throughput)});
    }
    table.print(std::cout);

    // Single-backup alternative: what does supply monitoring cost?
    std::cout << "\nSingle-backup (Hibernus-style) alternative — "
                 "monitoring overhead (Section IV-B):\n";
    Table mon({"ADC period (cycles)", "progress p", "monitor share"});
    for (double period : {8.0, 32.0, 128.0, 1024.0}) {
        core::MonitorConfig mc{period, 12.0 * params.execEnergy};
        mon.row({Table::num(period, 0),
                 Table::pct(core::singleBackupProgressWithMonitoring(
                     params, mc)),
                 Table::pct(core::monitoringOverheadShare(params, mc))});
    }
    mon.print(std::cout);
    std::cout << "Largest safe ADC period with a 10% backup reserve: "
              << Table::num(core::maxSafeMonitorPeriod(params, 0.10), 0)
              << " cycles.\n";

    // Is speculation (Spendthrift) worth building?
    const double headroom = core::speculationHeadroom(params);
    const double knee = core::speculationSweetSpot(params);
    std::cout << "\nSpeculation headroom at the current task length: "
              << Table::pct(headroom)
              << " of the budget\n(the most a perfect dead-energy "
                 "speculator could recover; Section IV-A2).\nHeadroom "
                 "saturates beyond tau_B ~ "
              << Table::num(knee, 0)
              << " cycles — no point stretching tasks further for a "
                 "speculator's sake.\n";
    return 0;
}
